// Package sweep expands a scenario into an experiment grid — arrival
// process × availability process × cluster size × offered load ×
// scheduler — and runs every cell, replicated over derived seeds, across
// a pool of parallel workers.
//
// Results are bit-identical for identical seeds regardless of worker
// count: every replication's seed is a pure function of (master seed, cell
// index, replication index), workers only fill pre-indexed slots, and
// aggregation always folds replications in index order.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dpsim/internal/metrics"
	"dpsim/internal/obs"
	"dpsim/internal/rng"
	"dpsim/internal/scenario"
)

// Cell is one point of the experiment grid. Scheduler is the policy's
// parameterized label (scenario.SchedulerSpec.Label()): a valid spec
// string that fully identifies the policy, parameters included.
// AppModel likewise labels the cell's application performance model
// (scenario.AppModelSpec.Label()) — "mix" is the native baseline where
// every mix component keeps its own registered model.
type Cell struct {
	Arrival      string  `json:"arrival"`
	ArrivalIdx   int     `json:"-"`
	Avail        string  `json:"availability"`
	AvailIdx     int     `json:"-"`
	Nodes        int     `json:"nodes"`
	Load         float64 `json:"load"`
	Scheduler    string  `json:"scheduler"`
	SchedulerIdx int     `json:"-"`
	AppModel     string  `json:"appmodel"`
	AppModelIdx  int     `json:"-"`
}

// CellStats aggregates a cell's replications.
type CellStats struct {
	Cell
	Replications int `json:"replications"`
	// Jobs is the total finished jobs pooled over all replications;
	// Unfinished counts jobs that arrived but never completed (e.g.
	// stranded by a permanent capacity loss) — response/wait/slowdown
	// statistics cover finished jobs only, so a non-zero Unfinished
	// flags survivorship bias in them.
	Jobs       int `json:"jobs"`
	Unfinished int `json:"unfinished"`
	// Response-time statistics over the pooled per-job responses [s].
	MeanResponse float64 `json:"mean_response_s"`
	P50Response  float64 `json:"p50_response_s"`
	P95Response  float64 `json:"p95_response_s"`
	P99Response  float64 `json:"p99_response_s"`
	// MeanWait averages the pooled per-job arrival→first-allocation
	// delays [s].
	MeanWait float64 `json:"mean_wait_s"`
	// Per-replication means.
	MeanMakespan    float64 `json:"mean_makespan_s"`
	MeanUtilization float64 `json:"mean_utilization"`
	// MeanAvailUtilization is utilization against the capacity the
	// volatile pool actually offered (equals MeanUtilization for a fixed
	// pool).
	MeanAvailUtilization float64 `json:"mean_avail_utilization"`
	// MeanSlowdown averages the pooled bounded slowdowns.
	MeanSlowdown float64 `json:"mean_slowdown"`
	// Availability dynamics, per-replication means: scheduler allocation
	// changes, applied capacity changes, work-seconds rolled back by
	// abrupt reclaims, and seconds of redistribution pause charged on
	// allocation deltas (the churn a hysteresis policy bounds).
	MeanReallocations  float64 `json:"mean_reallocations"`
	MeanCapacityEvents float64 `json:"mean_capacity_events"`
	MeanLostWork       float64 `json:"mean_lost_work_s"`
	MeanRedistribution float64 `json:"mean_redistribution_s"`
	// 95% confidence half-widths (normal approximation, Welford
	// variance): CI95Response over the pooled per-job responses,
	// CI95Makespan over the per-replication makespans. Zero when fewer
	// than two observations exist.
	CI95Response float64 `json:"ci95_response_s"`
	CI95Makespan float64 `json:"ci95_makespan_s"`
	// Extremes of the pooled per-job responses (streamed, exact).
	MinResponse float64 `json:"min_response_s"`
	MaxResponse float64 `json:"max_response_s"`
}

// cellAccum streams one cell's replications into running aggregates as
// they complete. Means that must stay bit-identical to the historical
// pooled computation are kept as running sums folded in replication
// order (the addition order matches the old pooled-slice walk exactly);
// only the response quantiles still pool values, since an exact
// percentile needs the full sample.
type cellAccum struct {
	unfinished int
	respSum    float64
	waitSum    float64
	slowSum    float64
	slowN      int
	responses  []float64 // pooled for P50/P95/P99 only
	makespan   float64
	util       float64
	availUtil  float64
	reallocs   float64
	capEvents  float64
	lostWork   float64
	redistS    float64
	respW      metrics.Welford
	makespanW  metrics.Welford
	respMM     metrics.MinMax
}

// fold absorbs one completed replication.
func (a *cellAccum) fold(run *scenario.CellRun) {
	for _, j := range run.Result.PerJob {
		a.respSum += j.Response
		a.waitSum += j.Wait
		a.responses = append(a.responses, j.Response)
		a.respW.Add(j.Response)
		a.respMM.Add(j.Response)
	}
	for _, s := range run.Slowdowns {
		a.slowSum += s
		a.slowN++
	}
	a.unfinished += run.Result.Unfinished
	a.makespan += run.Result.Makespan
	a.util += run.Result.Utilization
	a.availUtil += run.Result.AvailWeightedUtilization
	a.reallocs += float64(run.Result.Reallocations)
	a.capEvents += float64(run.Result.CapacityEvents)
	a.lostWork += run.Result.LostWorkS
	a.redistS += run.Result.RedistributionS
	a.makespanW.Add(run.Result.Makespan)
}

// stats finalizes the accumulator into the exported aggregate.
func (a *cellAccum) stats(c Cell, reps int) CellStats {
	st := CellStats{Cell: c, Replications: reps, Jobs: len(a.responses), Unfinished: a.unfinished}
	if n := len(a.responses); n > 0 {
		st.MeanResponse = a.respSum / float64(n)
		st.MeanWait = a.waitSum / float64(n)
	}
	sort.Float64s(a.responses) // cell-local; sort once for all quantiles
	st.P50Response = metrics.PercentileSorted(a.responses, 0.50)
	st.P95Response = metrics.PercentileSorted(a.responses, 0.95)
	st.P99Response = metrics.PercentileSorted(a.responses, 0.99)
	st.MeanMakespan = a.makespan / float64(reps)
	st.MeanUtilization = a.util / float64(reps)
	st.MeanAvailUtilization = a.availUtil / float64(reps)
	if a.slowN > 0 {
		st.MeanSlowdown = a.slowSum / float64(a.slowN)
	}
	st.MeanReallocations = a.reallocs / float64(reps)
	st.MeanCapacityEvents = a.capEvents / float64(reps)
	st.MeanLostWork = a.lostWork / float64(reps)
	st.MeanRedistribution = a.redistS / float64(reps)
	st.CI95Response = a.respW.CI95()
	st.CI95Makespan = a.makespanW.CI95()
	st.MinResponse = a.respMM.Min()
	st.MaxResponse = a.respMM.Max()
	return st
}

// Options tunes a sweep run.
type Options struct {
	// Replications per cell (default 1).
	Replications int
	// Workers caps the worker pool (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each completed run with
	// (done, total). Calls arrive from worker goroutines.
	Progress func(done, total int)
	// Observe, when non-nil, constructs the observability probe of each
	// replication before it runs. It is called from worker goroutines and
	// must be safe for concurrent use; returning nil leaves that
	// replication unobserved (the zero-cost path). The sample interval
	// comes from the scenario's observe block (Spec.Observe.SampleDTS).
	Observe func(c Cell, rep int) obs.Probe
	// SampleDTS overrides the observed replications' time-series sample
	// interval in virtual seconds; 0 uses the scenario's
	// observe.sample_dt_s. Ignored without Observe.
	SampleDTS float64
	// OnObserved hands each observed replication's probe back at the
	// in-order fold frontier: calls arrive strictly in (cell, replication)
	// index order, serialized under the sweep's lock, so a sink writing
	// CSV or traces needs no synchronization and its output is
	// bit-identical across worker counts.
	OnObserved func(c Cell, rep int, p obs.Probe)
	// Metrics, when non-nil, instruments the run on its
	// telemetry.Registry: runs started/finished/errored, per-worker busy
	// time, the fold frontier, and job totals (see Metrics for the cost
	// and determinism contracts). Nil leaves the zero-cost path: one nil
	// check per run, no atomics, no allocations. One Metrics must not be
	// shared by concurrent Run calls.
	Metrics *Metrics
}

// Cells expands the scenario's grid in canonical order: arrival process,
// then availability process, then nodes, then load, then scheduler, then
// application performance model. A scenario without availability
// processes gets the single fixed-pool pseudo-entry "none"; one without
// appmodels gets the single native-model pseudo-entry "mix" — in both
// cases the axis adds no cells, so legacy grids keep their historical
// cell order and derived seeds.
func Cells(spec *scenario.Spec) []Cell {
	type availEntry struct {
		label string
		idx   int
	}
	avail := []availEntry{{label: "none", idx: -1}}
	if len(spec.Availability) > 0 {
		avail = avail[:0]
		seen := make(map[string]int)
		for vi, v := range spec.Availability {
			label := v.Label()
			seen[label]++
			avail = append(avail, availEntry{label: label, idx: vi})
		}
		// Two axis entries may share a process (e.g. spot with and
		// without notice); suffix duplicates with their index so every
		// exported row names its cell unambiguously.
		for i := range avail {
			if seen[avail[i].label] > 1 {
				avail[i].label = fmt.Sprintf("%s#%d", avail[i].label, avail[i].idx)
			}
		}
	}
	type modelEntry struct {
		label string
		idx   int
	}
	models := []modelEntry{{label: "mix", idx: -1}}
	if len(spec.AppModels) > 0 {
		models = models[:0]
		for mi, m := range spec.AppModels {
			models = append(models, modelEntry{label: m.Label(), idx: mi})
		}
	}
	var out []Cell
	for ai, a := range spec.Arrivals {
		for _, v := range avail {
			for _, n := range spec.Nodes {
				for _, l := range spec.Loads {
					for si := range spec.Schedulers {
						for _, m := range models {
							out = append(out, Cell{
								Arrival: a.Label(), ArrivalIdx: ai,
								Avail: v.label, AvailIdx: v.idx,
								Nodes: n, Load: l,
								Scheduler: spec.Schedulers[si].Label(), SchedulerIdx: si,
								AppModel: m.label, AppModelIdx: m.idx,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// runSeed derives the seed of one replication as a pure function of the
// master seed and the run's grid coordinates, so results do not depend on
// scheduling order. Two splitmix rounds decorrelate neighboring cells.
func runSeed(master uint64, cell, rep int) uint64 {
	h := rng.New(master ^ (uint64(cell+1) * 0x9e3779b97f4a7c15)).Uint64()
	return rng.New(h ^ (uint64(rep+1) * 0xbf58476d1ce4e5b9)).Uint64()
}

// Run executes the full grid and returns one aggregate per cell, in
// Cells() order.
func Run(spec *scenario.Spec, opt Options) ([]CellStats, error) {
	reps := opt.Replications
	if reps <= 0 {
		reps = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := Cells(spec)
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	total := len(cells) * reps
	if workers > total {
		workers = total
	}
	m := opt.Metrics
	if m != nil {
		m.begin(len(cells), reps, workers, total)
	}

	// Completed replications fold into per-cell streaming accumulators as
	// soon as the fold frontier reaches them: runs must fold in index
	// order (the float sums are order-sensitive and the exports are
	// pinned bit-for-bit across worker counts), so out-of-order
	// completions park in the pending buffer until the frontier catches
	// up — memory stays bounded by the in-flight spread instead of the
	// whole grid's per-job data.
	pending := make([]*scenario.CellRun, total)
	folded := make([]bool, total)
	accums := make([]cellAccum, len(cells))
	// probes parks each observed replication's probe until the fold
	// frontier reaches it, giving OnObserved its deterministic order.
	var probes []obs.Probe
	if opt.Observe != nil {
		probes = make([]obs.Probe, total)
	}
	foldNext := 0
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	for range workers {
		wg.Add(1)
		// The closure takes no arguments on purpose: `go f(w)` would
		// heap-allocate the argument record even with opt.Metrics nil.
		// Workers self-number through the Metrics when one is attached.
		go func() {
			defer wg.Done()
			m := opt.Metrics
			worker := 0
			if m != nil {
				worker = m.claimWorker()
			}
			for idx := range jobs {
				ci, rep := idx/reps, idx%reps
				c := cells[ci]
				var probe obs.Probe
				if opt.Observe != nil {
					probe = opt.Observe(c, rep)
				}
				var t0 time.Time
				if m != nil {
					m.runsStarted.Inc()
					t0 = time.Now()
				}
				run, err := spec.RunCell(scenario.CellParams{
					Nodes:        c.Nodes,
					Load:         c.Load,
					SchedulerIdx: c.SchedulerIdx,
					ArrivalIdx:   c.ArrivalIdx,
					AvailIdx:     c.AvailIdx,
					AppModelIdx:  c.AppModelIdx,
					Seed:         runSeed(spec.Seed, ci, rep),
					Probe:        probe,
					SampleDTS:    opt.SampleDTS,
				})
				if m != nil {
					jobsDone, unfinished := 0, 0
					if run != nil {
						jobsDone = len(run.Result.PerJob)
						unfinished = run.Result.Unfinished
					}
					m.noteRun(worker, time.Since(t0), jobsDone, unfinished, err != nil)
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("sweep: cell %s/%s/%d nodes/load %g/%s/%s rep %d: %w",
						c.Arrival, c.Avail, c.Nodes, c.Load, c.Scheduler, c.AppModel, rep, err)
				}
				pending[idx] = run
				folded[idx] = true
				if probes != nil && run != nil {
					probes[idx] = probe
				}
				// Advance the fold frontier over every contiguous
				// completed run, releasing each run's per-job data as it
				// is absorbed.
				for foldNext < total && folded[foldNext] {
					if r := pending[foldNext]; r != nil {
						accums[foldNext/reps].fold(r)
						pending[foldNext] = nil
					}
					if probes != nil && probes[foldNext] != nil {
						if opt.OnObserved != nil {
							opt.OnObserved(cells[foldNext/reps], foldNext%reps, probes[foldNext])
						}
						probes[foldNext] = nil
					}
					foldNext++
				}
				done++
				if m != nil {
					m.noteFold(foldNext, done, reps)
				}
				if opt.Progress != nil {
					// Under the lock so counts reach the callback in order
					// (a stale count printed after the final one would
					// corrupt progress displays).
					opt.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	for idx := 0; idx < total; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]CellStats, len(cells))
	for ci, c := range cells {
		out[ci] = accums[ci].stats(c, reps)
	}
	return out, nil
}
