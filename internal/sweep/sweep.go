// Package sweep expands a scenario into an experiment grid — arrival
// process × availability process × cluster size × offered load ×
// scheduler × application model — and runs every cell, replicated over
// derived seeds, across a pool of parallel workers. A federated
// scenario instead sweeps its admission × routing policy axes over the
// fixed multi-cluster topology declared in the federation block.
//
// Results are bit-identical for identical scenarios regardless of
// worker count, sharding, deduplication or resume: every cell carries a
// canonical content hash of its resolved parameters (hash.go), every
// replication's seed is a pure function of (cell hash, replication
// index), workers only fill pre-indexed slots, and aggregation always
// folds replications in index order. The same hash keys the resumable
// fold checkpoints (checkpoint.go) and the cross-process shard
// artifacts (shard.go).
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpsim/internal/metrics"
	"dpsim/internal/obs"
	"dpsim/internal/scenario"
)

// Cell is one point of the experiment grid. Scheduler is the policy's
// parameterized label (scenario.SchedulerSpec.Label()): a valid spec
// string that fully identifies the policy, parameters included.
// AppModel likewise labels the cell's application performance model
// (scenario.AppModelSpec.Label()) — "mix" is the native baseline where
// every mix component keeps its own registered model.
//
// Labels are for display: when an axis holds two identical specs, the
// duplicates' labels get a "#idx" suffix so exported rows stay
// distinguishable. Cell identity — seeding, dedup, checkpoint and shard
// keys — comes from the undecorated specs via the content hash
// (CellHashes), so decorated duplicates still hash identically.
type Cell struct {
	Arrival      string  `json:"arrival"`
	ArrivalIdx   int     `json:"-"`
	Avail        string  `json:"availability"`
	AvailIdx     int     `json:"-"`
	Nodes        int     `json:"nodes"`
	Load         float64 `json:"load"`
	Scheduler    string  `json:"scheduler"`
	SchedulerIdx int     `json:"-"`
	AppModel     string  `json:"appmodel"`
	AppModelIdx  int     `json:"-"`
	// Admission and Routing name the federation policies of a federated
	// cell (scenario.AdmissionSpec/RoutingSpec labels). Non-federated
	// grids collapse both axes to the single pseudo-entry "none" with
	// index -1, adding no cells, so legacy grids keep their order. In a
	// federated grid the per-cluster topology (schedulers, app models,
	// availability) lives in the federation block, so the Scheduler,
	// AppModel and Avail columns all read "federated" with index -1.
	Admission    string `json:"admission"`
	AdmissionIdx int    `json:"-"`
	Routing      string `json:"routing"`
	RoutingIdx   int    `json:"-"`
}

// CellStats aggregates a cell's replications.
type CellStats struct {
	Cell
	Replications int `json:"replications"`
	// Jobs is the total finished jobs pooled over all replications;
	// Unfinished counts jobs that arrived but never completed (e.g.
	// stranded by a permanent capacity loss) — response/wait/slowdown
	// statistics cover finished jobs only, so a non-zero Unfinished
	// flags survivorship bias in them.
	Jobs       int `json:"jobs"`
	Unfinished int `json:"unfinished"`
	// Response-time statistics over the pooled per-job responses [s].
	MeanResponse float64 `json:"mean_response_s"`
	P50Response  float64 `json:"p50_response_s"`
	P95Response  float64 `json:"p95_response_s"`
	P99Response  float64 `json:"p99_response_s"`
	// MeanWait averages the pooled per-job arrival→first-allocation
	// delays [s].
	MeanWait float64 `json:"mean_wait_s"`
	// Per-replication means.
	MeanMakespan    float64 `json:"mean_makespan_s"`
	MeanUtilization float64 `json:"mean_utilization"`
	// MeanAvailUtilization is utilization against the capacity the
	// volatile pool actually offered (equals MeanUtilization for a fixed
	// pool).
	MeanAvailUtilization float64 `json:"mean_avail_utilization"`
	// MeanSlowdown averages the pooled bounded slowdowns.
	MeanSlowdown float64 `json:"mean_slowdown"`
	// Availability dynamics, per-replication means: scheduler allocation
	// changes, applied capacity changes, work-seconds rolled back by
	// abrupt reclaims, and seconds of redistribution pause charged on
	// allocation deltas (the churn a hysteresis policy bounds).
	MeanReallocations  float64 `json:"mean_reallocations"`
	MeanCapacityEvents float64 `json:"mean_capacity_events"`
	MeanLostWork       float64 `json:"mean_lost_work_s"`
	MeanRedistribution float64 `json:"mean_redistribution_s"`
	// MeanRejected is the per-replication mean count of jobs turned away
	// by the federation admission policy. Always 0 for non-federated
	// cells (nothing rejects) and for the always-admit policy.
	MeanRejected float64 `json:"mean_rejected_jobs"`
	// 95% confidence half-widths (normal approximation, Welford
	// variance): CI95Response over the pooled per-job responses,
	// CI95Makespan over the per-replication makespans. Zero when fewer
	// than two observations exist.
	CI95Response float64 `json:"ci95_response_s"`
	CI95Makespan float64 `json:"ci95_makespan_s"`
	// Extremes of the pooled per-job responses (streamed, exact). Nil
	// when the cell finished no jobs — exported as empty CSV fields and
	// JSON nulls, since a literal 0 would be indistinguishable from a
	// genuine zero-second response.
	MinResponse *float64 `json:"min_response_s"`
	MaxResponse *float64 `json:"max_response_s"`
}

// cellAccum streams one cell's replications into running aggregates as
// they complete. Means that must stay bit-identical to the historical
// pooled computation are kept as running sums folded in replication
// order (the addition order matches the old pooled-slice walk exactly);
// only the response quantiles still pool values, since an exact
// percentile needs the full sample. The accumulator round-trips through
// JSON exactly (checkpoint.go), which is what makes resumed sweeps
// byte-identical to uninterrupted ones.
type cellAccum struct {
	unfinished int
	respSum    float64
	waitSum    float64
	slowSum    float64
	slowN      int
	responses  []float64 // pooled for P50/P95/P99 only
	makespan   float64
	util       float64
	availUtil  float64
	reallocs   float64
	capEvents  float64
	lostWork   float64
	redistS    float64
	rejected   float64
	respW      metrics.Welford
	makespanW  metrics.Welford
	respMM     metrics.MinMax
}

// fold absorbs one completed replication. reps sizes the pooled
// response buffer on first use: per-job counts are near-constant across
// a cell's replications, so one allocation usually serves the cell.
func (a *cellAccum) fold(run *scenario.CellRun, reps int) {
	if a.responses == nil && len(run.Result.PerJob) > 0 {
		a.responses = make([]float64, 0, len(run.Result.PerJob)*reps)
	}
	for _, j := range run.Result.PerJob {
		a.respSum += j.Response
		a.waitSum += j.Wait
		a.responses = append(a.responses, j.Response)
		a.respW.Add(j.Response)
		a.respMM.Add(j.Response)
	}
	for _, s := range run.Slowdowns {
		a.slowSum += s
		a.slowN++
	}
	a.unfinished += run.Result.Unfinished
	a.makespan += run.Result.Makespan
	a.util += run.Result.Utilization
	a.availUtil += run.Result.AvailWeightedUtilization
	a.reallocs += float64(run.Result.Reallocations)
	a.capEvents += float64(run.Result.CapacityEvents)
	a.lostWork += run.Result.LostWorkS
	a.redistS += run.Result.RedistributionS
	a.rejected += float64(run.Rejected)
	a.makespanW.Add(run.Result.Makespan)
}

// stats finalizes the accumulator into the exported aggregate.
func (a *cellAccum) stats(c Cell, reps int) CellStats {
	st := CellStats{Cell: c, Replications: reps, Jobs: len(a.responses), Unfinished: a.unfinished}
	if n := len(a.responses); n > 0 {
		st.MeanResponse = a.respSum / float64(n)
		st.MeanWait = a.waitSum / float64(n)
	}
	sort.Float64s(a.responses) // cell-local; sort once for all quantiles
	st.P50Response = metrics.PercentileSorted(a.responses, 0.50)
	st.P95Response = metrics.PercentileSorted(a.responses, 0.95)
	st.P99Response = metrics.PercentileSorted(a.responses, 0.99)
	st.MeanMakespan = a.makespan / float64(reps)
	st.MeanUtilization = a.util / float64(reps)
	st.MeanAvailUtilization = a.availUtil / float64(reps)
	if a.slowN > 0 {
		st.MeanSlowdown = a.slowSum / float64(a.slowN)
	}
	st.MeanReallocations = a.reallocs / float64(reps)
	st.MeanCapacityEvents = a.capEvents / float64(reps)
	st.MeanLostWork = a.lostWork / float64(reps)
	st.MeanRedistribution = a.redistS / float64(reps)
	st.MeanRejected = a.rejected / float64(reps)
	st.CI95Response = a.respW.CI95()
	st.CI95Makespan = a.makespanW.CI95()
	if a.respMM.N() > 0 {
		mn, mx := a.respMM.Min(), a.respMM.Max()
		st.MinResponse, st.MaxResponse = &mn, &mx
	}
	return st
}

// ErrInterrupted reports a sweep stopped by Options.Interrupted. When a
// Checkpoint path is configured, the final checkpoint has been written,
// so re-running with the same path resumes where the sweep stopped.
var ErrInterrupted = errors.New("sweep: interrupted")

// DefaultCheckpointEvery is the checkpoint cadence when
// Options.CheckpointEvery is unset: the checkpoint file is rewritten
// after this many executed runs.
const DefaultCheckpointEvery = 256

// Options tunes a sweep run.
type Options struct {
	// Replications per cell (default 1).
	Replications int
	// Workers caps the worker pool (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each executed run with
	// (done, total), where total counts the runs this process actually
	// executes — deduplicated, checkpoint-restored and other-shard runs
	// are excluded. Calls arrive from worker goroutines.
	Progress func(done, total int)
	// Observe, when non-nil, constructs the observability probe of each
	// replication before it runs. It is called from worker goroutines and
	// must be safe for concurrent use; returning nil leaves that
	// replication unobserved (the zero-cost path). The sample interval
	// comes from the scenario's observe block (Spec.Observe.SampleDTS).
	// Observation disables dedup (probes are per-run side effects that
	// fan-out would skip), and checkpoint-restored replications are not
	// re-observed.
	Observe func(c Cell, rep int) obs.Probe
	// SampleDTS overrides the observed replications' time-series sample
	// interval in virtual seconds; 0 uses the scenario's
	// observe.sample_dt_s. Ignored without Observe.
	SampleDTS float64
	// OnObserved hands each observed replication's probe back at the
	// in-order fold frontier: calls arrive strictly in (cell, replication)
	// index order, serialized under the sweep's lock, so a sink writing
	// CSV or traces needs no synchronization and its output is
	// bit-identical across worker counts.
	OnObserved func(c Cell, rep int, p obs.Probe)
	// Metrics, when non-nil, instruments the run on its
	// telemetry.Registry: runs started/finished/errored, per-worker busy
	// time, the fold frontier, and job totals (see Metrics for the cost
	// and determinism contracts). Nil leaves the zero-cost path: one nil
	// check per run, no atomics, no allocations. One Metrics must not be
	// shared by concurrent Run calls.
	Metrics *Metrics
	// NoDedup disables content-hash deduplication. By default, cells
	// with identical content hashes execute once and the completed runs
	// fan out to every duplicate's fold slots — exported aggregates are
	// identical either way (identical hash means identical seeds), so
	// NoDedup mainly serves A/B verification. Dedup also turns itself
	// off while Observe is set.
	NoDedup bool
	// Shard restricts execution to one content-hash partition of the
	// grid. The zero value runs the whole grid. Sharded execution is
	// driven through RunShard; Run rejects a non-trivial Shard because
	// its full-grid report would cover only the owned cells.
	Shard ShardSel
	// Checkpoint, when non-empty, is the path of the resumable fold
	// checkpoint: the sweep restores matching per-cell state from it on
	// start, rewrites it every CheckpointEvery executed runs and on
	// completion, error or interrupt (atomic rename — never torn).
	// Entries are keyed by cell content hash, so a resume survives grid
	// edits: cells whose hash is unchanged restore, new or edited cells
	// run from scratch.
	Checkpoint string
	// CheckpointEvery is the checkpoint cadence in executed runs
	// (default DefaultCheckpointEvery). Ignored without Checkpoint.
	CheckpointEvery int
	// Interrupted, when non-nil, is polled between job dispatches; once
	// it returns true the sweep stops handing out runs, drains the
	// in-flight ones, writes a final checkpoint and returns
	// ErrInterrupted.
	Interrupted func() bool
}

// axisLabels resolves one axis's display labels, suffixing duplicates
// with "#idx" so every exported row names its cell unambiguously.
// Duplicate detection runs against the undecorated labels, and identity
// (hashing, seeding, dedup) never sees the decoration.
func axisLabels(n int, label func(int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = label(i)
	}
	if n < 2 {
		return out
	}
	dup := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if out[i] == out[j] {
				dup[i], dup[j] = true, true
			}
		}
	}
	for i := range out {
		if dup[i] {
			out[i] = fmt.Sprintf("%s#%d", out[i], i)
		}
	}
	return out
}

// axisEntry pairs an axis entry's display label with its spec index
// (-1 for the pseudo-entry of an empty axis).
type axisEntry struct {
	label string
	idx   int
}

// axisEntries expands one optional axis: empty axes collapse to the
// single pseudo-entry `none` (so legacy grids keep their historical
// cell order), populated axes get disambiguated labels.
func axisEntries(n int, none string, label func(int) string) []axisEntry {
	if n == 0 {
		return []axisEntry{{label: none, idx: -1}}
	}
	labels := axisLabels(n, label)
	out := make([]axisEntry, n)
	for i := range out {
		out[i] = axisEntry{label: labels[i], idx: i}
	}
	return out
}

// Cells expands the scenario's grid in canonical order: arrival process,
// then availability process, then nodes, then load, then scheduler, then
// application performance model. A scenario without availability
// processes gets the single fixed-pool pseudo-entry "none"; one without
// appmodels gets the single native-model pseudo-entry "mix" — in both
// cases the axis adds no cells, so legacy grids keep their historical
// cell order. Two axis entries may share a spec (e.g. spot with and
// without notice, or A/B copies of one scheduler): duplicates keep
// their position but their labels get a "#idx" suffix.
//
// A federated scenario replaces the scheduler, availability and
// appmodel axes (the per-cluster topology lives in the federation
// block — validation forbids the spec-level axes) with the single
// pseudo-entry "federated", and instead sweeps the federation's
// admission × routing policy axes, innermost after appmodel.
// Non-federated grids collapse both policy axes to the single
// pseudo-entry "none", adding no cells.
func Cells(spec *scenario.Spec) []Cell {
	avail := axisEntries(len(spec.Availability), "none",
		func(i int) string { return spec.Availability[i].Label() })
	models := axisEntries(len(spec.AppModels), "mix",
		func(i int) string { return spec.AppModels[i].Label() })
	scheds := axisEntries(len(spec.Schedulers), "none",
		func(i int) string { return spec.Schedulers[i].Label() })
	admissions := []axisEntry{{label: "none", idx: -1}}
	routings := []axisEntry{{label: "none", idx: -1}}
	if f := spec.Federation; f != nil {
		fed := []axisEntry{{label: "federated", idx: -1}}
		avail, models, scheds = fed, fed, fed
		admissions = axisEntries(len(f.Admissions), "always",
			func(i int) string { return f.Admissions[i].Label() })
		routings = axisEntries(len(f.Routings), "round-robin",
			func(i int) string { return f.Routings[i].Label() })
	}
	out := make([]Cell, 0,
		len(spec.Arrivals)*len(avail)*len(spec.Nodes)*len(spec.Loads)*
			len(scheds)*len(models)*len(admissions)*len(routings))
	for ai, a := range spec.Arrivals {
		for _, v := range avail {
			for _, n := range spec.Nodes {
				for _, l := range spec.Loads {
					for _, s := range scheds {
						for _, m := range models {
							for _, ad := range admissions {
								for _, rt := range routings {
									out = append(out, Cell{
										Arrival: a.Label(), ArrivalIdx: ai,
										Avail: v.label, AvailIdx: v.idx,
										Nodes: n, Load: l,
										Scheduler: s.label, SchedulerIdx: s.idx,
										AppModel: m.label, AppModelIdx: m.idx,
										Admission: ad.label, AdmissionIdx: ad.idx,
										Routing: rt.label, RoutingIdx: rt.idx,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Run executes the full grid and returns one aggregate per cell, in
// Cells() order.
func Run(spec *scenario.Spec, opt Options) ([]CellStats, error) {
	if opt.Shard.Count > 1 {
		return nil, fmt.Errorf("sweep: Run covers the whole grid; use RunShard for shard %d/%d",
			opt.Shard.Index, opt.Shard.Count)
	}
	g, err := runGrid(spec, opt)
	if err != nil {
		return nil, err
	}
	return g.stats, nil
}

// gridResult is the internal outcome of runGrid: the expanded grid, its
// content hashes, the shard-ownership mask and the finalized per-cell
// aggregates (zero-valued for cells the shard does not own).
type gridResult struct {
	cells  []Cell
	hashes []CellHash
	owned  []bool
	reps   int
	stats  []CellStats
}

// runGrid plans and executes a sweep: hash the grid, filter to the
// owned shard, restore checkpointed cells, group duplicates, run what
// remains, and fold everything — executed, restored and fanned-out —
// through the in-order frontier.
func runGrid(spec *scenario.Spec, opt Options) (*gridResult, error) {
	reps := opt.Replications
	if reps <= 0 {
		reps = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := Cells(spec)
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	hashes := CellHashes(spec, cells)
	total := len(cells) * reps

	// Shard ownership: cells partition by content hash, so every process
	// of an n-way sharded sweep derives the same disjoint split.
	owned := make([]bool, len(cells))
	if n := opt.Shard.Count; n > 1 {
		if opt.Shard.Index < 0 || opt.Shard.Index >= n {
			return nil, fmt.Errorf("sweep: shard index %d outside 0..%d", opt.Shard.Index, n-1)
		}
		for i, h := range hashes {
			owned[i] = h.ShardOf(n) == opt.Shard.Index
		}
	} else {
		for i := range owned {
			owned[i] = true
		}
	}

	// Dedup plan: cells with identical hashes run once — the lowest
	// owned index is the representative, and its completed runs fan out
	// to every duplicate's slots. Hash-partitioned sharding puts a
	// duplicate group entirely in one shard, so the plan never needs a
	// run from another process.
	dedup := !opt.NoDedup && opt.Observe == nil
	repOf := make([]int, len(cells))
	for i := range repOf {
		repOf[i] = i
	}
	var dupsOf map[int][]int
	dedupedCells := 0
	if dedup {
		byHash := make(map[CellHash]int, len(cells))
		for i, h := range hashes {
			if !owned[i] {
				continue
			}
			if r, ok := byHash[h]; ok {
				repOf[i] = r
				if dupsOf == nil {
					dupsOf = make(map[int][]int)
				}
				dupsOf[r] = append(dupsOf[r], i)
				dedupedCells++
			} else {
				byHash[h] = i
			}
		}
	}

	accums := make([]cellAccum, len(cells))

	// Checkpoint restore: per-cell accumulator state keyed by content
	// hash, so a resume survives grid edits — unchanged cells restore,
	// new or edited cells (fresh hashes) run from scratch. A checkpoint
	// with a different replication count is ignored wholesale: its
	// accumulators fold a different run set.
	restored := make([]int, len(cells))
	resumedCells := 0
	if opt.Checkpoint != "" {
		ck, err := loadCheckpoint(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		if ck != nil && ck.Replications == reps {
			for ci := range cells {
				if !owned[ci] {
					continue
				}
				entry, ok := ck.Cells[hashes[ci].String()]
				if !ok || entry.Folded <= 0 || entry.Folded > reps {
					continue
				}
				accums[ci].restore(entry.Accum)
				restored[ci] = entry.Folded
				resumedCells++
			}
		}
	}

	// Slot plan. Every (cell, replication) keeps one pre-indexed slot;
	// slots this process will not execute — other shards' cells,
	// restored replications — are pre-marked folded so the frontier
	// passes them, and a duplicate's remaining slots fill when its
	// representative's run completes. execIdx is what actually runs.
	pending := make([]*scenario.CellRun, total)
	folded := make([]bool, total)
	marked := 0 // folded[] entries set; foldLag = marked - foldNext
	execIdx := make([]int, 0, total)
	for ci := range cells {
		base := ci * reps
		if !owned[ci] {
			for r := 0; r < reps; r++ {
				folded[base+r] = true
			}
			marked += reps
			continue
		}
		k := restored[ci]
		for r := 0; r < k; r++ {
			folded[base+r] = true
		}
		marked += k
		if repOf[ci] != ci {
			continue // reps k..reps-1 arrive by fan-out from the representative
		}
		for r := k; r < reps; r++ {
			execIdx = append(execIdx, base+r)
		}
	}
	execTotal := len(execIdx)
	if workers > execTotal {
		workers = execTotal
	}

	m := opt.Metrics
	if m != nil {
		m.begin(len(cells), reps, workers, execTotal)
		m.notePlan(dedupedCells, resumedCells)
	}

	// probes parks each observed replication's probe until the fold
	// frontier reaches it, giving OnObserved its deterministic order.
	var probes []obs.Probe
	if opt.Observe != nil {
		probes = make([]obs.Probe, total)
	}
	ckEvery := opt.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = DefaultCheckpointEvery
	}
	foldNext := 0
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		done      int
		sinceSave int
		stopped   atomic.Bool
	)

	// advance moves the fold frontier over every contiguous completed
	// slot, releasing each run's per-job data as it is absorbed: runs
	// must fold in index order (the float sums are order-sensitive and
	// the exports are pinned bit-for-bit across worker counts), so
	// out-of-order completions park in pending until the frontier
	// catches up — memory stays bounded by the in-flight spread instead
	// of the whole grid's per-job data. Called under mu.
	advance := func() {
		for foldNext < total && folded[foldNext] {
			if r := pending[foldNext]; r != nil {
				accums[foldNext/reps].fold(r, reps)
				pending[foldNext] = nil
			}
			if probes != nil && probes[foldNext] != nil {
				if opt.OnObserved != nil {
					opt.OnObserved(cells[foldNext/reps], foldNext%reps, probes[foldNext])
				}
				probes[foldNext] = nil
			}
			foldNext++
		}
	}

	// saveNow snapshots every owned cell's accumulator keyed by content
	// hash and rewrites the checkpoint atomically. Called under mu, so
	// the snapshot is a consistent fold-frontier cut. Duplicate hashes
	// keep the least-folded entry: restore applies one entry to every
	// duplicate, so it must not overstate any of them.
	saveNow := func() error {
		ck := &checkpointFile{
			Version:      CheckpointVersion,
			Scenario:     spec.Name,
			Replications: reps,
			FoldNext:     foldNext,
			Cells:        make(map[string]checkpointCell, len(cells)),
		}
		for ci := range cells {
			if !owned[ci] {
				continue
			}
			fi := foldNext - ci*reps
			if fi > reps {
				fi = reps
			}
			if fi < restored[ci] {
				fi = restored[ci] // restored ahead of the frontier
			}
			if fi <= 0 {
				continue
			}
			key := hashes[ci].String()
			if prev, ok := ck.Cells[key]; ok && prev.Folded <= fi {
				continue
			}
			ck.Cells[key] = checkpointCell{Folded: fi, Accum: accums[ci].state()}
		}
		return saveCheckpointFile(opt.Checkpoint, ck)
	}

	jobs := make(chan int)
	for range workers {
		wg.Add(1)
		// The closure takes no arguments on purpose: `go f(w)` would
		// heap-allocate the argument record even with opt.Metrics nil.
		// Workers self-number through the Metrics when one is attached.
		go func() {
			defer wg.Done()
			m := opt.Metrics
			worker := 0
			if m != nil {
				worker = m.claimWorker()
			}
			for idx := range jobs {
				ci, rep := idx/reps, idx%reps
				c := cells[ci]
				var probe obs.Probe
				if opt.Observe != nil {
					probe = opt.Observe(c, rep)
				}
				var t0 time.Time
				if m != nil {
					m.runsStarted.Inc()
					t0 = time.Now()
				}
				run, err := spec.RunCell(scenario.CellParams{
					Nodes:        c.Nodes,
					Load:         c.Load,
					SchedulerIdx: c.SchedulerIdx,
					ArrivalIdx:   c.ArrivalIdx,
					AvailIdx:     c.AvailIdx,
					AppModelIdx:  c.AppModelIdx,
					AdmissionIdx: c.AdmissionIdx,
					RoutingIdx:   c.RoutingIdx,
					Seed:         runSeed(hashes[ci], rep),
					Probe:        probe,
					SampleDTS:    opt.SampleDTS,
				})
				if m != nil {
					jobsDone, unfinished := 0, 0
					if run != nil {
						jobsDone = len(run.Result.PerJob)
						unfinished = run.Result.Unfinished
					}
					m.noteRun(worker, time.Since(t0), jobsDone, unfinished, err != nil)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: cell %s/%s/%d nodes/load %g/%s/%s/%s/%s rep %d: %w",
							c.Arrival, c.Avail, c.Nodes, c.Load, c.Scheduler, c.AppModel,
							c.Admission, c.Routing, rep, err)
					}
					// Fail fast: the dispatcher stops handing out runs; the
					// in-flight ones drain so the fold frontier stays
					// consistent for the final checkpoint. The errored slot
					// (and its duplicates) stays unfolded — the frontier
					// stalls before it, so the checkpoint records only
					// replications whose data was actually absorbed and a
					// resume re-runs this one.
					stopped.Store(true)
				} else {
					pending[idx] = run
					folded[idx] = true
					marked++
					if probes != nil && run != nil {
						probes[idx] = probe
					}
					// Fan the completed run out to every duplicate cell's
					// matching slot: identical hash means identical seeds, so
					// one execution stands in for all of them.
					if dupsOf != nil {
						for _, d := range dupsOf[ci] {
							slot := d*reps + rep
							pending[slot] = run
							folded[slot] = true
							marked++
						}
					}
					advance()
				}
				done++
				if m != nil {
					m.noteFold(foldNext, marked, reps)
				}
				if opt.Checkpoint != "" {
					sinceSave++
					if sinceSave >= ckEvery {
						sinceSave = 0
						if err := saveNow(); err != nil && firstErr == nil {
							firstErr = fmt.Errorf("sweep: checkpoint: %w", err)
							stopped.Store(true)
						}
					}
				}
				if opt.Progress != nil {
					// Under the lock so counts reach the callback in order
					// (a stale count printed after the final one would
					// corrupt progress displays).
					opt.Progress(done, execTotal)
				}
				mu.Unlock()
			}
		}()
	}

	// Pre-marked slots at the head of the grid (other shards' cells,
	// restored replications) fold before any run completes — and, when
	// everything restored, without any worker at all.
	mu.Lock()
	advance()
	if m != nil {
		m.noteFold(foldNext, marked, reps)
	}
	mu.Unlock()

	for _, idx := range execIdx {
		if stopped.Load() {
			break
		}
		if opt.Interrupted != nil && opt.Interrupted() {
			mu.Lock()
			if firstErr == nil {
				firstErr = ErrInterrupted
			}
			mu.Unlock()
			break
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	// The final checkpoint lands on every exit path — completion, error,
	// interrupt — so the next run never re-executes folded work.
	if opt.Checkpoint != "" {
		mu.Lock()
		err := saveNow()
		mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sweep: checkpoint: %w", err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	stats := make([]CellStats, len(cells))
	for ci, c := range cells {
		if owned[ci] {
			stats[ci] = accums[ci].stats(c, reps)
		}
	}
	return &gridResult{cells: cells, hashes: hashes, owned: owned, reps: reps, stats: stats}, nil
}
