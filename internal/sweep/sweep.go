// Package sweep expands a scenario into an experiment grid — arrival
// process × cluster size × offered load × scheduler — and runs every cell,
// replicated over derived seeds, across a pool of parallel workers.
//
// Results are bit-identical for identical seeds regardless of worker
// count: every replication's seed is a pure function of (master seed, cell
// index, replication index), workers only fill pre-indexed slots, and
// aggregation always folds replications in index order.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dpsim/internal/metrics"
	"dpsim/internal/rng"
	"dpsim/internal/scenario"
)

// Cell is one point of the experiment grid.
type Cell struct {
	Arrival    string  `json:"arrival"`
	ArrivalIdx int     `json:"-"`
	Nodes      int     `json:"nodes"`
	Load       float64 `json:"load"`
	Scheduler  string  `json:"scheduler"`
}

// CellStats aggregates a cell's replications.
type CellStats struct {
	Cell
	Replications int `json:"replications"`
	// Jobs is the total finished jobs pooled over all replications.
	Jobs int `json:"jobs"`
	// Response-time statistics over the pooled per-job responses [s].
	MeanResponse float64 `json:"mean_response_s"`
	P50Response  float64 `json:"p50_response_s"`
	P95Response  float64 `json:"p95_response_s"`
	P99Response  float64 `json:"p99_response_s"`
	// Per-replication means.
	MeanMakespan    float64 `json:"mean_makespan_s"`
	MeanUtilization float64 `json:"mean_utilization"`
	// MeanSlowdown averages the pooled bounded slowdowns.
	MeanSlowdown float64 `json:"mean_slowdown"`
}

// Options tunes a sweep run.
type Options struct {
	// Replications per cell (default 1).
	Replications int
	// Workers caps the worker pool (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each completed run with
	// (done, total). Calls arrive from worker goroutines.
	Progress func(done, total int)
}

// Cells expands the scenario's grid in canonical order: arrival process,
// then nodes, then load, then scheduler.
func Cells(spec *scenario.Spec) []Cell {
	var out []Cell
	for ai, a := range spec.Arrivals {
		for _, n := range spec.Nodes {
			for _, l := range spec.Loads {
				for _, sched := range spec.Schedulers {
					out = append(out, Cell{
						Arrival: a.Label(), ArrivalIdx: ai,
						Nodes: n, Load: l, Scheduler: sched,
					})
				}
			}
		}
	}
	return out
}

// runSeed derives the seed of one replication as a pure function of the
// master seed and the run's grid coordinates, so results do not depend on
// scheduling order. Two splitmix rounds decorrelate neighboring cells.
func runSeed(master uint64, cell, rep int) uint64 {
	h := rng.New(master ^ (uint64(cell+1) * 0x9e3779b97f4a7c15)).Uint64()
	return rng.New(h ^ (uint64(rep+1) * 0xbf58476d1ce4e5b9)).Uint64()
}

// Run executes the full grid and returns one aggregate per cell, in
// Cells() order.
func Run(spec *scenario.Spec, opt Options) ([]CellStats, error) {
	reps := opt.Replications
	if reps <= 0 {
		reps = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := Cells(spec)
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	total := len(cells) * reps
	if workers > total {
		workers = total
	}

	runs := make([]*scenario.CellRun, total)
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				ci, rep := idx/reps, idx%reps
				c := cells[ci]
				run, err := spec.RunCell(scenario.CellParams{
					Nodes:      c.Nodes,
					Load:       c.Load,
					Scheduler:  c.Scheduler,
					ArrivalIdx: c.ArrivalIdx,
					Seed:       runSeed(spec.Seed, ci, rep),
				})
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("sweep: cell %s/%d nodes/load %g/%s rep %d: %w",
						c.Arrival, c.Nodes, c.Load, c.Scheduler, rep, err)
				}
				runs[idx] = run
				done++
				if opt.Progress != nil {
					// Under the lock so counts reach the callback in order
					// (a stale count printed after the final one would
					// corrupt progress displays).
					opt.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	for idx := 0; idx < total; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]CellStats, len(cells))
	for ci, c := range cells {
		st := CellStats{Cell: c, Replications: reps}
		var responses, slowdowns []float64
		var makespan, util float64
		for rep := 0; rep < reps; rep++ {
			run := runs[ci*reps+rep]
			for _, j := range run.Result.PerJob {
				responses = append(responses, j.Response)
			}
			slowdowns = append(slowdowns, run.Slowdowns...)
			makespan += run.Result.Makespan
			util += run.Result.Utilization
		}
		st.Jobs = len(responses)
		st.MeanResponse = metrics.Mean(responses)
		sort.Float64s(responses) // responses is cell-local; sort once for all quantiles
		st.P50Response = metrics.PercentileSorted(responses, 0.50)
		st.P95Response = metrics.PercentileSorted(responses, 0.95)
		st.P99Response = metrics.PercentileSorted(responses, 0.99)
		st.MeanMakespan = makespan / float64(reps)
		st.MeanUtilization = util / float64(reps)
		st.MeanSlowdown = metrics.Mean(slowdowns)
		out[ci] = st
	}
	return out, nil
}
