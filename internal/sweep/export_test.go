package sweep

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCSVQuotesSpecialFields: scenario names or trace labels with
// commas/quotes must round-trip through RFC 4180 quoting instead of
// corrupting the column layout.
func TestWriteCSVQuotesSpecialFields(t *testing.T) {
	stats := []CellStats{{
		Cell:         Cell{Arrival: `trace:odd,"name".csv`, Avail: "none", Nodes: 4, Load: 1, Scheduler: "rigid-fcfs", AppModel: "mix"},
		Replications: 1, Jobs: 2,
		MeanResponse: 1, P50Response: 1, P95Response: 2, P99Response: 3,
		MeanMakespan: 5, MeanUtilization: 0.5, MeanSlowdown: 1.5,
	}}
	var b strings.Builder
	if err := WriteCSV(&b, "nodes,loads study", stats); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("export not parseable: %v", err)
	}
	if len(rows) != 2 || len(rows[1]) != 27 {
		t.Fatalf("rows = %d, fields = %d", len(rows), len(rows[1]))
	}
	if rows[1][0] != "nodes,loads study" || rows[1][1] != `trace:odd,"name".csv` {
		t.Fatalf("fields corrupted: %q, %q", rows[1][0], rows[1][1])
	}
}

// TestOutputDocColumns: docs/output.md must carry the exact CSV header
// and a mention of every column — the doc fails CI when the export
// schema drifts.
func TestOutputDocColumns(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "output.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	cols := CSVColumns()
	if len(cols) < 10 {
		t.Fatalf("suspicious column list: %v", cols)
	}
	if header := strings.Join(cols, ","); !strings.Contains(doc, header) {
		t.Errorf("docs/output.md does not contain the exact CSV header:\n%s", header)
	}
	for _, col := range cols {
		if !strings.Contains(doc, "`"+col+"`") {
			t.Errorf("column %q is not documented in docs/output.md", col)
		}
	}
}
