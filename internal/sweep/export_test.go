package sweep

import (
	"encoding/csv"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteCSVQuotesSpecialFields: scenario names or trace labels with
// commas/quotes must round-trip through RFC 4180 quoting instead of
// corrupting the column layout.
func TestWriteCSVQuotesSpecialFields(t *testing.T) {
	stats := []CellStats{{
		Cell:         Cell{Arrival: `trace:odd,"name".csv`, Avail: "none", Nodes: 4, Load: 1, Scheduler: "rigid-fcfs", AppModel: "mix"},
		Replications: 1, Jobs: 2,
		MeanResponse: 1, P50Response: 1, P95Response: 2, P99Response: 3,
		MeanMakespan: 5, MeanUtilization: 0.5, MeanSlowdown: 1.5,
	}}
	var b strings.Builder
	if err := WriteCSV(&b, "nodes,loads study", stats); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("export not parseable: %v", err)
	}
	if len(rows) != 2 || len(rows[1]) != 30 {
		t.Fatalf("rows = %d, fields = %d", len(rows), len(rows[1]))
	}
	if rows[1][0] != "nodes,loads study" || rows[1][1] != `trace:odd,"name".csv` {
		t.Fatalf("fields corrupted: %q, %q", rows[1][0], rows[1][1])
	}
}

// TestOutputDocColumns: docs/output.md must carry the exact CSV header
// and a mention of every column — the doc fails CI when the export
// schema drifts.
func TestOutputDocColumns(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "output.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	cols := CSVColumns()
	if len(cols) < 10 {
		t.Fatalf("suspicious column list: %v", cols)
	}
	if header := strings.Join(cols, ","); !strings.Contains(doc, header) {
		t.Errorf("docs/output.md does not contain the exact CSV header:\n%s", header)
	}
	for _, col := range cols {
		if !strings.Contains(doc, "`"+col+"`") {
			t.Errorf("column %q is not documented in docs/output.md", col)
		}
	}
}

// TestWriteFileAtomicSuccess: the destination appears with the full
// content and no temp droppings remain.
func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello\nworld\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\nworld\n" {
		t.Errorf("content %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp file left behind: %v", entries)
	}
}

// TestWriteFileAtomicFailureLeavesOldFile: a failed export neither
// truncates nor replaces an existing destination, and the temp file is
// cleaned up.
func TestWriteFileAtomicFailureLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous complete export"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("mid-write failure")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial gar"))
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "previous complete export" {
		t.Errorf("destination clobbered: %q", data)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("temp file left behind: %v", entries)
	}
}

// TestAtomicFileStreaming: the long-lived streaming path (time-series
// CSV written during a sweep) — nothing at the destination until
// Commit, everything after, and Abort after Commit is a no-op.
func TestAtomicFileStreaming(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ts.csv")
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Abort()
	a.Write([]byte("row1\n"))
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("destination exists before Commit")
	}
	a.Write([]byte("row2\n"))
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	a.Abort() // must not remove the committed file
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "row1\nrow2\n" {
		t.Errorf("content %q", data)
	}
}

// TestAtomicFileAbort: abort leaves no destination and no temp file.
func TestAtomicFileAbort(t *testing.T) {
	dir := t.TempDir()
	a, err := CreateAtomic(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("doomed"))
	a.Abort()
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("files left behind: %v", entries)
	}
}
