package sweep

import (
	"testing"

	"dpsim/internal/scenario"
)

// BenchmarkSweepGrid measures the parallel sweep machinery end to end:
// one op expands and runs a 12-cell grid (2 availability axes × 2 nodes ×
// 3 schedulers) with 2 replications per cell on the default worker pool.
func BenchmarkSweepGrid(b *testing.B) {
	spec, err := scenario.Parse([]byte(`{
		"name": "bench",
		"nodes": [8, 16],
		"schedulers": ["rigid-fcfs", "equipartition", "efficiency-greedy"],
		"seed": 3,
		"jobs": 12,
		"mix": [{"kind": "synthetic", "phases": 4, "work_s": 120, "comm": 0.05, "cv": 0.3}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 8},
		"availability": [
			{"process": "none"},
			{"process": "spot", "reclaim_mean_s": 60, "reclaim_nodes": 2,
			 "restore_mean_s": 40, "min_capacity": 2, "horizon_s": 2000}
		],
		"reconfig": {"redistribution_s_per_node": 0.2, "lost_work_s": 1}
	}`))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec, Options{Replications: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
