package sweep

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsim/internal/scenario"
	"dpsim/internal/telemetry"
)

// metricsSpec is a small but multi-cell grid: 2 nodes × 2 schedulers =
// 4 cells.
func metricsSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(`{
		"name": "metricstest",
		"nodes": [4, 8],
		"schedulers": ["rigid-fcfs", "equipartition"],
		"seed": 11,
		"jobs": 6,
		"mix": [{"kind": "synthetic", "phases": 2, "work_s": 20, "comm": 0.05, "cv": 0.3}],
		"arrivals": {"process": "poisson", "mean_interarrival_s": 5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestMetricsFinalValues: after a sweep, the instrument set accounts for
// every run exactly once and the fold frontier has passed the whole
// grid.
func TestMetricsFinalValues(t *testing.T) {
	spec := metricsSpec(t)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, 2)
	stats, err := Run(spec, Options{Replications: 3, Workers: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	cells := len(stats)
	total := cells * 3
	p := m.Progress()
	if !p.Active {
		t.Error("progress inactive after run")
	}
	if p.RunsDone != total || p.RunsTotal != total || p.RunsErrored != 0 {
		t.Errorf("runs done/total/errored = %d/%d/%d, want %d/%d/0",
			p.RunsDone, p.RunsTotal, p.RunsErrored, total, total)
	}
	if p.CellsDone != cells || p.FoldFrontier != total || p.FoldLag != 0 {
		t.Errorf("cells done %d (want %d), frontier %d (want %d), lag %d (want 0)",
			p.CellsDone, cells, p.FoldFrontier, total, p.FoldLag)
	}
	jobs := 0
	for _, st := range stats {
		jobs += st.Jobs
	}
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, f := range snap.Families {
		if len(f.Metrics) == 1 && len(f.Metrics[0].Labels) == 0 {
			vals[f.Name] = f.Metrics[0].Value
		}
	}
	if got := vals["dpsim_sweep_jobs_finished_total"]; got != float64(jobs) {
		t.Errorf("jobs_finished_total = %g, want %d (the aggregate pool)", got, jobs)
	}
	if got := vals["dpsim_sweep_runs_started_total"]; got != float64(total) {
		t.Errorf("runs_started_total = %g, want %d", got, total)
	}
	// Busy time accumulated on some worker.
	var busy time.Duration
	for _, w := range p.Workers {
		busy += time.Duration(w.BusySeconds * float64(time.Second))
	}
	if busy <= 0 {
		t.Error("no worker busy time recorded")
	}
}

// TestMetricsDeterministicAcrossWorkers is the telemetry half of the
// sweep determinism contract: the deterministic metric families reach
// byte-identical Prometheus text for Workers = 1..8.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	spec := metricsSpec(t)
	var want []byte
	for workers := 1; workers <= 8; workers++ {
		reg := telemetry.NewRegistry()
		m := NewMetrics(reg, workers)
		if _, err := Run(spec, Options{Replications: 2, Workers: workers, Metrics: m}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().Filter(m.DeterministicMetricNames()...).WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want = buf.Bytes()
			if !bytes.Contains(want, []byte("dpsim_sweep_runs_finished_total 8")) {
				t.Fatalf("unexpected baseline exposition:\n%s", want)
			}
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: deterministic metrics diverge from workers=1:\n--- got\n%s--- want\n%s",
				workers, buf.Bytes(), want)
		}
	}
}

// TestMetricsErroredRuns: a failing cell counts as errored, not
// finished, and Run still reports its first error.
func TestMetricsErroredRuns(t *testing.T) {
	spec := metricsSpec(t)
	// An unknown appmodel index cannot happen via the public API; force
	// an error instead with a scheduler the registry does not know by
	// mutating the spec's first scheduler name after validation.
	spec.Schedulers[0].Name = "no-such-policy"
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, 1)
	if _, err := Run(spec, Options{Replications: 1, Workers: 1, Metrics: m}); err == nil {
		t.Fatal("expected an error from the broken scheduler")
	}
	if m.runsErrored.Value() == 0 {
		t.Error("no errored runs counted")
	}
	if got := m.runsStarted.Value(); got != m.runsFinished.Value()+m.runsErrored.Value() {
		t.Errorf("started %d != finished+errored %d",
			got, m.runsFinished.Value()+m.runsErrored.Value())
	}
}

// TestMetricsInstrumentationZeroAlloc pins the enabled path's cost: the
// per-run instrumentation calls allocate nothing (the sweep's zero-alloc
// counterpart of the PR 4 per-event tests).
func TestMetricsInstrumentationZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg, 2)
	m.begin(4, 2, 2, 8)
	if allocs := testing.AllocsPerRun(200, func() {
		m.runsStarted.Inc()
		m.noteRun(1, 3*time.Millisecond, 5, 0, false)
		m.noteFold(3, 4, 2)
	}); allocs != 0 {
		t.Errorf("per-run instrumentation: %g allocs/op, want 0", allocs)
	}
}

// TestLiveScrapeDuringSweep is the acceptance path: while a sweep is
// mid-flight, a telemetry.Server scrape returns valid exposition with
// cells-done, throughput, per-worker busy fractions and Go heap/GC
// gauges, and /progress reports the live counts.
func TestLiveScrapeDuringSweep(t *testing.T) {
	spec := metricsSpec(t)
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	m := NewMetrics(reg, 2)
	srv, err := telemetry.NewServer("127.0.0.1:0", reg, m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ready := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	opt := Options{
		Replications: 2,
		Workers:      2,
		Metrics:      m,
		Progress: func(done, total int) {
			// Park the sweep after its first completed run so the scrape
			// below is guaranteed to land mid-flight.
			once.Do(func() {
				close(ready)
				<-release
			})
		},
	}
	errc := make(chan error, 1)
	go func() {
		_, err := Run(spec, opt)
		errc <- err
	}()
	<-ready

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE dpsim_sweep_cells_done gauge",
		"dpsim_sweep_cells_done ",
		"dpsim_sweep_cells_per_second ",
		"dpsim_sweep_runs_started_total ",
		`dpsim_sweep_worker_busy_fraction{worker="0"}`,
		`dpsim_sweep_worker_busy_ns_total{worker="1"}`,
		"# TYPE dpsim_sweep_run_duration_seconds histogram",
		`dpsim_sweep_run_duration_seconds_bucket{le="+Inf"}`,
		"go_memstats_heap_alloc_bytes ",
		"go_memstats_gc_pause_seconds_total ",
		"go_goroutines ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("mid-run /metrics missing %q", want)
		}
	}

	resp, err = http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var info telemetry.ProgressInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Active {
		t.Error("mid-run progress inactive")
	}
	if info.RunsTotal != 8 || info.RunsDone < 1 || info.RunsDone >= info.RunsTotal+1 {
		t.Errorf("mid-run runs = %d/%d", info.RunsDone, info.RunsTotal)
	}
	if len(info.Workers) != 2 {
		t.Errorf("mid-run workers = %d, want 2", len(info.Workers))
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if p := m.Progress(); p.RunsDone != 8 || p.FoldLag != 0 {
		t.Errorf("final progress: %+v", p)
	}
}
