package sweep

// Resumable fold checkpoints. A checkpoint is a JSON snapshot of the
// sweep's fold frontier — every owned cell's streaming accumulator plus
// the count of replications it has absorbed — keyed by the cell's
// content hash. Because per-cell folds are independent and strictly
// replication-ordered, restoring an accumulator and folding the
// remaining replications yields bit-identical aggregates to an
// uninterrupted run (float64 values survive the JSON round-trip
// exactly: Go emits the shortest representation that parses back to the
// same bits).
//
// Content-hash keying is what makes a checkpoint robust:
//
//   - A resume after a grid edit restores only the cells whose hash
//     still appears, so an incremental re-sweep runs just the new or
//     edited cells.
//   - Any change to the workload (seed, jobs, mix, horizon) changes
//     every hash, so a stale checkpoint is ignored rather than merged —
//     no explicit scenario-fingerprint check is needed.
//
// Files are written through the PR 7 atomic-rename path, so a crash
// mid-write leaves the previous complete checkpoint in place.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"dpsim/internal/metrics"
)

// CheckpointVersion is the format version of the sweep checkpoint file;
// readers reject other versions.
const CheckpointVersion = 1

// checkpointFile is the on-disk checkpoint layout.
type checkpointFile struct {
	Version      int    `json:"version"`
	Scenario     string `json:"scenario"`
	Replications int    `json:"replications"`
	// FoldNext is the fold frontier at snapshot time (informational:
	// restore derives everything from the per-cell entries).
	FoldNext int `json:"fold_next"`
	// Cells maps each cell's content hash (lowercase hex) to its folded
	// accumulator state. Cells with nothing folded are omitted.
	Cells map[string]checkpointCell `json:"cells"`
}

// checkpointCell is one cell's resumable state.
type checkpointCell struct {
	// Folded counts the replications already absorbed by Accum, in
	// replication order; the resumed sweep executes reps [Folded, reps).
	Folded int        `json:"folded"`
	Accum  accumState `json:"accum"`
}

// accumState is cellAccum's serialized mirror. The pooled responses ride
// along so percentile columns survive the resume — the dominant cost of
// a checkpoint, proportional to jobs folded so far.
type accumState struct {
	Unfinished int       `json:"unfinished"`
	RespSum    float64   `json:"resp_sum"`
	WaitSum    float64   `json:"wait_sum"`
	SlowSum    float64   `json:"slow_sum"`
	SlowN      int       `json:"slow_n"`
	Responses  []float64 `json:"responses"`
	Makespan   float64   `json:"makespan_s"`
	Util       float64   `json:"utilization"`
	AvailUtil  float64   `json:"avail_utilization"`
	Reallocs   float64   `json:"reallocations"`
	CapEvents  float64   `json:"capacity_events"`
	LostWork   float64   `json:"lost_work_s"`
	RedistS    float64   `json:"redistribution_s"`
	// Rejected sums the federation admission rejections; omitted from
	// legacy checkpoints, it restores as 0 — exactly what a non-federated
	// cell folded.
	Rejected  float64         `json:"rejected_jobs,omitempty"`
	RespW     metrics.Welford `json:"resp_welford"`
	MakespanW metrics.Welford `json:"makespan_welford"`
	RespMM    metrics.MinMax  `json:"resp_minmax"`
}

// state snapshots the accumulator. The responses slice is shared, not
// copied: callers serialize the state before releasing the sweep lock.
func (a *cellAccum) state() accumState {
	return accumState{
		Unfinished: a.unfinished,
		RespSum:    a.respSum,
		WaitSum:    a.waitSum,
		SlowSum:    a.slowSum,
		SlowN:      a.slowN,
		Responses:  a.responses,
		Makespan:   a.makespan,
		Util:       a.util,
		AvailUtil:  a.availUtil,
		Reallocs:   a.reallocs,
		CapEvents:  a.capEvents,
		LostWork:   a.lostWork,
		RedistS:    a.redistS,
		Rejected:   a.rejected,
		RespW:      a.respW,
		MakespanW:  a.makespanW,
		RespMM:     a.respMM,
	}
}

// restore rebuilds the accumulator from a checkpointed snapshot. The
// responses slice is copied, not adopted: dedup restores the same
// decoded entry into the representative and every duplicate cell, and
// each accumulator later appends to and sorts its buffer in place —
// sharing one backing array would alias them.
func (a *cellAccum) restore(st accumState) {
	*a = cellAccum{
		unfinished: st.Unfinished,
		respSum:    st.RespSum,
		waitSum:    st.WaitSum,
		slowSum:    st.SlowSum,
		slowN:      st.SlowN,
		responses:  append([]float64(nil), st.Responses...),
		makespan:   st.Makespan,
		util:       st.Util,
		availUtil:  st.AvailUtil,
		reallocs:   st.Reallocs,
		capEvents:  st.CapEvents,
		lostWork:   st.LostWork,
		redistS:    st.RedistS,
		rejected:   st.Rejected,
		respW:      st.RespW,
		makespanW:  st.MakespanW,
		respMM:     st.RespMM,
	}
}

// loadCheckpoint reads a checkpoint file; a missing file is a fresh
// start (nil, nil), anything unreadable or of a foreign version is an
// error — silently discarding a corrupt checkpoint would silently
// re-run the whole sweep.
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("sweep: checkpoint %s: version %d, want %d", path, ck.Version, CheckpointVersion)
	}
	return &ck, nil
}

// saveCheckpointFile writes the checkpoint through the atomic-rename
// path: the previous checkpoint stays intact until the new one is
// durably complete.
func saveCheckpointFile(path string, ck *checkpointFile) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
