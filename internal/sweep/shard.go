package sweep

// Cross-process sharding. A sharded sweep splits the grid into n
// disjoint partitions by cell content hash (CellHash.ShardOf): every
// process derives the same split from the scenario alone, runs only its
// own cells, and writes a shard artifact keyed by hash. Merging the n
// artifacts reconstructs the full grid report byte-identical to a
// single-process run — per-cell aggregates are pure functions of the
// cell's content, and the merge re-derives row order and display labels
// from the scenario, taking only the numbers from the artifacts.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"

	"dpsim/internal/scenario"
)

// ShardSel selects one shard of an n-way split: Index in [0, Count).
// The zero value (Count 0 or 1) means "the whole grid".
type ShardSel struct {
	Index int
	Count int
}

// ParseShard parses the CLI form "i/n" (e.g. "0/4").
func ParseShard(s string) (ShardSel, error) {
	idx, count, ok := strings.Cut(s, "/")
	if ok {
		i, err1 := strconv.Atoi(idx)
		n, err2 := strconv.Atoi(count)
		if err1 == nil && err2 == nil && n >= 1 && i >= 0 && i < n {
			return ShardSel{Index: i, Count: n}, nil
		}
	}
	return ShardSel{}, fmt.Errorf("sweep: invalid shard %q (want i/n with 0 <= i < n)", s)
}

// ShardArtifactVersion is the format version of shard artifact files;
// MergeShards rejects other versions.
const ShardArtifactVersion = 1

// ShardArtifact is one shard's output: the aggregates of every unique
// cell the shard owns, keyed by content hash. Duplicate cells (dedup'd
// or not) appear once — the merge fans the entry out to every grid slot
// with that hash.
type ShardArtifact struct {
	Version      int         `json:"version"`
	Scenario     string      `json:"scenario"`
	ShardIndex   int         `json:"shard_index"`
	ShardCount   int         `json:"shard_count"`
	Replications int         `json:"replications"`
	Cells        []ShardCell `json:"cells"`
}

// ShardCell pairs a cell's content hash with its finalized aggregate.
type ShardCell struct {
	Hash  string    `json:"hash"`
	Stats CellStats `json:"stats"`
}

// RunShard executes one shard of the grid (opt.Shard selects which;
// the zero value runs everything as shard 0/1) and returns its
// artifact. Checkpoint, dedup and interrupt options apply per shard.
func RunShard(spec *scenario.Spec, opt Options) (*ShardArtifact, error) {
	g, err := runGrid(spec, opt)
	if err != nil {
		return nil, err
	}
	count := opt.Shard.Count
	if count < 1 {
		count = 1
	}
	art := &ShardArtifact{
		Version:      ShardArtifactVersion,
		Scenario:     spec.Name,
		ShardIndex:   opt.Shard.Index,
		ShardCount:   count,
		Replications: g.reps,
	}
	seen := make(map[CellHash]bool, len(g.cells))
	for ci := range g.cells {
		if !g.owned[ci] || seen[g.hashes[ci]] {
			continue
		}
		seen[g.hashes[ci]] = true
		art.Cells = append(art.Cells, ShardCell{Hash: g.hashes[ci].String(), Stats: g.stats[ci]})
	}
	return art, nil
}

// WriteShard writes the artifact atomically as indented JSON.
func WriteShard(path string, art *ShardArtifact) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(art)
	})
}

// readShard loads and validates one artifact file.
func readShard(path string) (*ShardArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("sweep: shard artifact %s does not exist", path)
		}
		return nil, fmt.Errorf("sweep: shard artifact: %w", err)
	}
	var art ShardArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("sweep: shard artifact %s: %w", path, err)
	}
	if art.Version != ShardArtifactVersion {
		return nil, fmt.Errorf("sweep: shard artifact %s: version %d, want %d", path, art.Version, ShardArtifactVersion)
	}
	return &art, nil
}

// MergeShards combines shard artifacts into the full grid's aggregates,
// in Cells() order, byte-identical to a single-process Run: the grid,
// its hashes and the display labels are re-derived from the scenario,
// and each cell takes its numbers from whichever artifact owns its
// hash. Returns the aggregates and the shards' replication count.
//
// The artifacts must come from the same scenario, replication count and
// shard split — the same shard_count, each shard_index at most once —
// so a stale artifact from a different split (say a 0/3 mixed into a
// 0/2 + 1/2 merge) is rejected instead of silently overwriting cells.
// A cell whose hash no artifact covers is an error (the scenario was
// edited after the shards ran, or a shard is missing).
func MergeShards(spec *scenario.Spec, paths []string) ([]CellStats, int, error) {
	if len(paths) == 0 {
		return nil, 0, fmt.Errorf("sweep: no shard artifacts to merge")
	}
	byHash := make(map[string]CellStats)
	reps := 0
	count := 0
	indexSeen := make(map[int]string, len(paths))
	for _, path := range paths {
		art, err := readShard(path)
		if err != nil {
			return nil, 0, err
		}
		if art.Scenario != spec.Name {
			return nil, 0, fmt.Errorf("sweep: shard artifact %s: scenario %q, want %q", path, art.Scenario, spec.Name)
		}
		if reps == 0 {
			reps = art.Replications
		} else if art.Replications != reps {
			return nil, 0, fmt.Errorf("sweep: shard artifact %s: %d replications, other shards ran %d",
				path, art.Replications, reps)
		}
		if count == 0 {
			count = art.ShardCount
		} else if art.ShardCount != count {
			return nil, 0, fmt.Errorf("sweep: shard artifact %s: shard split %d/%d, other artifacts are from an n=%d split",
				path, art.ShardIndex, art.ShardCount, count)
		}
		if art.ShardIndex < 0 || art.ShardIndex >= art.ShardCount {
			return nil, 0, fmt.Errorf("sweep: shard artifact %s: shard index %d outside 0..%d",
				path, art.ShardIndex, art.ShardCount-1)
		}
		if prev, ok := indexSeen[art.ShardIndex]; ok {
			return nil, 0, fmt.Errorf("sweep: shard artifact %s: shard %d/%d already merged from %s",
				path, art.ShardIndex, art.ShardCount, prev)
		}
		indexSeen[art.ShardIndex] = path
		for _, sc := range art.Cells {
			byHash[sc.Hash] = sc.Stats
		}
	}
	cells := Cells(spec)
	hashes := CellHashes(spec, cells)
	out := make([]CellStats, len(cells))
	for ci, c := range cells {
		st, ok := byHash[hashes[ci].String()]
		if !ok {
			return nil, 0, fmt.Errorf("sweep: no shard artifact covers cell %s/%s/%d nodes/load %g/%s/%s (hash %s) — scenario edited after the shards ran, or a shard missing?",
				c.Arrival, c.Avail, c.Nodes, c.Load, c.Scheduler, c.AppModel, hashes[ci])
		}
		// The artifact's embedded Cell may carry another duplicate's
		// display labels; identity comes from the locally expanded grid.
		st.Cell = c
		out[ci] = st
	}
	return out, reps, nil
}
