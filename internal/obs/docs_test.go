package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func readObservabilityDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "observability.md"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestObservabilityDocColumns: docs/observability.md must carry the
// exact time-series CSV header and a mention of every column — the doc
// fails CI when the export schema drifts.
func TestObservabilityDocColumns(t *testing.T) {
	doc := readObservabilityDoc(t)
	cols := SampleColumns()
	if len(cols) < 5 {
		t.Fatalf("suspicious column list: %v", cols)
	}
	if header := strings.Join(cols, ","); !strings.Contains(doc, header) {
		t.Errorf("docs/observability.md does not contain the exact time-series header:\n%s", header)
	}
	for _, col := range cols {
		if !strings.Contains(doc, "`"+col+"`") {
			t.Errorf("column %q is not documented in docs/observability.md", col)
		}
	}
}

// TestObservabilityDocSummaryKeys: every JSON key of the run-summary
// export (Summary, LatencySummary, LatencyBucket) must be mentioned in
// docs/observability.md.
func TestObservabilityDocSummaryKeys(t *testing.T) {
	doc := readObservabilityDoc(t)
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Summary{}),
		reflect.TypeOf(LatencySummary{}),
		reflect.TypeOf(LatencyBucket{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			key, _, _ := strings.Cut(tag, ",")
			if key == "" || key == "-" {
				continue
			}
			if !strings.Contains(doc, "`"+key+"`") {
				t.Errorf("summary key %q (%s.%s) is not documented in docs/observability.md",
					key, typ.Name(), typ.Field(i).Name)
			}
		}
	}
}
