package obs

// ring is a bounded FIFO buffer keeping the newest max entries. It backs
// every Recorder stream so an arbitrarily long run records in bounded
// memory: the buffer grows geometrically (amortized O(1) appends) up to
// max, then wraps, overwriting the oldest entry and counting the drop.
// The growth-then-wrap shape is what keeps probe-attached steady-state
// event processing inside the bounded-amortized-allocation contract.
type ring[T any] struct {
	buf     []T
	head    int // index of the oldest entry once the buffer has wrapped
	max     int
	wrapped bool
	dropped int
}

// newRing returns a ring keeping the newest max entries (max must be
// positive). The initial allocation is small; capacity doubles toward
// max as entries append.
func newRing[T any](max int) ring[T] {
	n := 64
	if n > max {
		n = max
	}
	return ring[T]{buf: make([]T, 0, n), max: max}
}

// push appends v, overwriting the oldest entry when full.
func (r *ring[T]) push(v T) {
	if !r.wrapped && len(r.buf) < r.max {
		r.buf = append(r.buf, v)
		return
	}
	r.wrapped = true
	r.buf[r.head] = v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// len reports the number of retained entries.
func (r *ring[T]) len() int { return len(r.buf) }

// items returns the retained entries oldest-first, as a fresh slice.
func (r *ring[T]) items() []T {
	if !r.wrapped {
		return append([]T(nil), r.buf...)
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}
