package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRingKeepsNewest: the ring must retain exactly the newest max
// entries in order and count the drops.
func TestRingKeepsNewest(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 10; i++ {
		r.push(i)
	}
	got := r.items()
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("items = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("items = %v, want %v", got, want)
		}
	}
	if r.dropped != 6 {
		t.Errorf("dropped = %d, want 6", r.dropped)
	}
	if r.len() != 4 {
		t.Errorf("len = %d, want 4", r.len())
	}
}

// TestRingUnderfill: a ring below capacity returns exactly what was
// pushed, nothing dropped.
func TestRingUnderfill(t *testing.T) {
	r := newRing[string](100)
	r.push("a")
	r.push("b")
	got := r.items()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" || r.dropped != 0 {
		t.Fatalf("items = %v dropped = %d", got, r.dropped)
	}
}

// TestRecorderSpans: the hook sequence of one two-phase job must yield a
// wait span, two phase spans and a run span with consistent bounds.
func TestRecorderSpans(t *testing.T) {
	r := NewRecorder(Config{Label: "test"})
	r.JobArrive(1, 7)
	r.JobFirstStart(3, 7)
	r.PhaseDone(5, 7, 0, 2)
	r.PhaseDone(9, 7, 1, 2)
	r.JobFinish(9, 7)
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans: %+v", len(spans), spans)
	}
	expect := []Span{
		{JobID: 7, Kind: SpanWait, Phase: -1, Start: 1, End: 3},
		{JobID: 7, Kind: SpanPhase, Phase: 0, Start: 3, End: 5},
		{JobID: 7, Kind: SpanPhase, Phase: 1, Start: 5, End: 9},
		{JobID: 7, Kind: SpanRun, Phase: -1, Start: 3, End: 9},
	}
	for i, want := range expect {
		if spans[i] != want {
			t.Errorf("span %d = %+v, want %+v", i, spans[i], want)
		}
	}
	sum := r.Summarize()
	if sum.Arrived != 1 || sum.Finished != 1 || sum.Spans != 4 || sum.EndS != 9 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestRecorderCharges: redistribution charges become reconfig spans and
// accumulate; lost work accumulates without a span.
func TestRecorderCharges(t *testing.T) {
	r := NewRecorder(Config{})
	r.JobArrive(0, 1)
	r.JobFirstStart(0, 1)
	r.ReconfigCharge(2, 1, ChargeRedistribution, 0.5)
	r.ReconfigCharge(3, 1, ChargeLostWork, 4)
	if r.Summarize().RedistributionS != 0.5 || r.Summarize().LostWorkS != 4 {
		t.Fatalf("summary = %+v", r.Summarize())
	}
	var reconfig int
	for _, s := range r.Spans() {
		if s.Kind == SpanReconfig {
			reconfig++
			if s.End-s.Start != 0.5 {
				t.Errorf("reconfig span %+v", s)
			}
		}
	}
	if reconfig != 1 {
		t.Errorf("reconfig spans = %d, want 1", reconfig)
	}
	if got := r.Charges(); len(got) != 2 || got[0].Kind != ChargeRedistribution || got[1].Kind != ChargeLostWork {
		t.Errorf("charges = %+v", got)
	}
}

// TestLatencyHist: bucket placement, moments and export trimming.
func TestLatencyHist(t *testing.T) {
	var h LatencyHist
	h.Add(500)      // 0.5µs → bucket 0
	h.Add(1500)     // 1.5µs → bucket 1
	h.Add(3_000)    // 3µs → bucket 2
	h.Add(10_000_0) // 100µs → bucket 7
	if h.N() != 4 {
		t.Fatalf("n = %d", h.N())
	}
	b := h.Buckets()
	if len(b) != 8 {
		t.Fatalf("buckets = %+v", b)
	}
	if b[0].Count != 1 || b[0].LeUS != 1 || b[1].Count != 1 || b[2].Count != 1 || b[7].Count != 1 {
		t.Errorf("buckets = %+v", b)
	}
	if h.MinUS() != 0.5 || h.MaxUS() != 100 {
		t.Errorf("min/max = %g/%g", h.MinUS(), h.MaxUS())
	}
}

// TestChromeTraceValidJSON: the exported trace must be valid trace-event
// JSON carrying the process/thread names and counter series the
// recorder produced.
func TestChromeTraceValidJSON(t *testing.T) {
	r := NewRecorder(Config{Label: "equipartition"})
	r.JobArrive(0, 3)
	r.JobFirstStart(1, 3)
	r.TimeSample(Sample{T: 2, Waiting: 0, Running: 1, Allocated: 4, Available: 8, Utilization: 0.5})
	r.CapacityNotice(3, 6)
	r.CapacityChange(4, 6)
	r.Preempt(4, 3)
	r.PhaseDone(5, 3, 0, 1)
	r.JobFinish(5, 3)

	var tr Trace
	r.AppendTrace(&tr, 1)
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.Unit)
	}
	var procName, threadName string
	counters := map[string]bool{}
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			if ev["name"] == "process_name" {
				procName = args["name"].(string)
			}
			if ev["name"] == "thread_name" {
				threadName = args["name"].(string)
			}
		case "C":
			counters[ev["name"].(string)] = true
		}
	}
	if procName != "equipartition" {
		t.Errorf("process name = %q", procName)
	}
	if threadName != "job 3" {
		t.Errorf("thread name = %q", threadName)
	}
	for _, c := range []string{"jobs", "nodes", "capacity"} {
		if !counters[c] {
			t.Errorf("counter %q missing (have %v)", c, counters)
		}
	}
}

// TestTimeSeriesWriter: prefix columns + sample columns, %g floats,
// header written once.
func TestTimeSeriesWriter(t *testing.T) {
	var b strings.Builder
	tw := NewTimeSeriesWriter(&b, "scheduler")
	samples := []Sample{
		{T: 0, Waiting: 2, Running: 0, Allocated: 0, Available: 8, Utilization: 0},
		{T: 5, Waiting: 0, Running: 2, Allocated: 8, Available: 8, Utilization: 1},
	}
	if err := tw.WriteAll([]string{"rigid-fcfs"}, samples); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteAll([]string{"equipartition"}, samples[:1]); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	wantHeader := "scheduler," + strings.Join(SampleColumns(), ",")
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	if lines[1] != "rigid-fcfs,0,2,0,0,8,0" || lines[3] != "equipartition,0,2,0,0,8,0" {
		t.Errorf("rows = %q", lines[1:])
	}
	if err := tw.WriteAll([]string{"a", "b"}, nil); err == nil {
		t.Error("prefix arity mismatch not rejected")
	}
}

// TestSummaryJSON: the summary export must round-trip as JSON with the
// latency block populated.
func TestSummaryJSON(t *testing.T) {
	r := NewRecorder(Config{Label: "x"})
	r.SchedulerInvoke(1, SchedulerInvocation{WallNS: 2000, Changed: 1, Active: 3, Allocated: 8})
	var b strings.Builder
	if err := WriteSummaryJSON(&b, []Summary{r.Summarize()}); err != nil {
		t.Fatal(err)
	}
	var got []Summary
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SchedulerLatency.Invocations != 1 || got[0].SchedulerLatency.MeanUS != 2 {
		t.Errorf("summary = %+v", got)
	}
}

// TestRecorderRingBounds: streams past their cap keep the newest
// entries and report the drops in the summary.
func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(Config{MaxSamples: 4, MaxSpans: 4, MaxEvents: 4})
	for i := 0; i < 10; i++ {
		r.TimeSample(Sample{T: float64(i)})
	}
	s := r.Samples()
	if len(s) != 4 || s[0].T != 6 || s[3].T != 9 {
		t.Fatalf("samples = %+v", s)
	}
	sum := r.Summarize()
	if sum.Samples != 4 || sum.DroppedSamples != 6 {
		t.Errorf("summary = %+v", sum)
	}
}
