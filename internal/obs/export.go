package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// sampleHeader is the stable column order of the time-series CSV
// export. Callers prepend their own identity columns (scheduler label,
// grid-cell coordinates) via NewTimeSeriesWriter's prefix.
const sampleHeader = "t_s,waiting_jobs,running_jobs,allocated_nodes,available_nodes,utilization"

// SampleColumns returns the time-series CSV column names in order — the
// authoritative list docs/observability.md is pinned against (see
// TestObservabilityDocColumns).
func SampleColumns() []string { return strings.Split(sampleHeader, ",") }

// TimeSeriesWriter streams samples as CSV rows: the fixed sample
// columns (SampleColumns), preceded by any caller-defined identity
// columns declared at construction. Rows are RFC 4180-quoted; floats
// use %g, so identical samples always serialize identically.
type TimeSeriesWriter struct {
	cw      *csv.Writer
	prefix  int
	row     []string
	started bool
}

// NewTimeSeriesWriter returns a writer whose header is the prefix
// columns followed by SampleColumns. The header is written on the first
// WriteAll call, so an empty export stays empty.
func NewTimeSeriesWriter(w io.Writer, prefix ...string) *TimeSeriesWriter {
	header := append(append([]string(nil), prefix...), SampleColumns()...)
	tw := &TimeSeriesWriter{cw: csv.NewWriter(w), prefix: len(prefix)}
	tw.row = header
	return tw
}

// WriteAll appends one row per sample, each carrying the given prefix
// values (len(prefix) must match the constructor's column count).
func (tw *TimeSeriesWriter) WriteAll(prefix []string, samples []Sample) error {
	if len(prefix) != tw.prefix {
		return fmt.Errorf("obs: %d prefix values for %d prefix columns", len(prefix), tw.prefix)
	}
	if !tw.started {
		if err := tw.cw.Write(tw.row); err != nil {
			return err
		}
		tw.started = true
	}
	for _, s := range samples {
		row := tw.row[:0]
		row = append(row, prefix...)
		row = append(row,
			fmt.Sprintf("%g", s.T),
			fmt.Sprintf("%d", s.Waiting), fmt.Sprintf("%d", s.Running),
			fmt.Sprintf("%d", s.Allocated), fmt.Sprintf("%d", s.Available),
			fmt.Sprintf("%g", s.Utilization))
		tw.row = row
		if err := tw.cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered rows and reports any write error.
func (tw *TimeSeriesWriter) Flush() error {
	tw.cw.Flush()
	return tw.cw.Error()
}

// LatencySummary is the run summary's scheduler-invocation latency
// block, in microseconds of wall-clock time.
type LatencySummary struct {
	Invocations int             `json:"invocations"`
	MeanUS      float64         `json:"mean_us"`
	MinUS       float64         `json:"min_us"`
	MaxUS       float64         `json:"max_us"`
	CI95US      float64         `json:"ci95_us"`
	Buckets     []LatencyBucket `json:"buckets,omitempty"`
}

// Summary is the run-summary JSON export: one run's counts, charges and
// scheduler-latency statistics, plus how much of each recorded stream
// was retained versus dropped by the ring bounds.
type Summary struct {
	Label            string         `json:"label,omitempty"`
	Arrived          int            `json:"arrived"`
	Finished         int            `json:"finished"`
	Preemptions      int            `json:"preemptions"`
	CapacitySteps    int            `json:"capacity_steps"`
	LostWorkS        float64        `json:"lost_work_s"`
	RedistributionS  float64        `json:"redistribution_s"`
	SchedulerLatency LatencySummary `json:"scheduler_latency"`
	Samples          int            `json:"samples"`
	DroppedSamples   int            `json:"dropped_samples"`
	Spans            int            `json:"spans"`
	DroppedSpans     int            `json:"dropped_spans"`
	EndS             float64        `json:"end_s"`
}

// Summarize collapses the recorder into its Summary.
func (r *Recorder) Summarize() Summary {
	return Summary{
		Label:           r.label,
		Arrived:         r.arrived,
		Finished:        r.finished,
		Preemptions:     r.preempts.len() + r.preempts.dropped,
		CapacitySteps:   r.capSteps.len() + r.capSteps.dropped,
		LostWorkS:       r.lostWorkS,
		RedistributionS: r.redistS,
		SchedulerLatency: LatencySummary{
			Invocations: r.invocations,
			MeanUS:      r.latency.MeanUS(),
			MinUS:       r.latency.MinUS(),
			MaxUS:       r.latency.MaxUS(),
			CI95US:      r.latency.CI95US(),
			Buckets:     r.latency.Buckets(),
		},
		Samples:        r.samples.len(),
		DroppedSamples: r.samples.dropped,
		Spans:          r.spans.len(),
		DroppedSpans:   r.spans.dropped,
		EndS:           r.end,
	}
}

// WriteSummaryJSON renders the summaries as an indented JSON array, one
// entry per recorded run.
func WriteSummaryJSON(w io.Writer, summaries []Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if summaries == nil {
		summaries = []Summary{}
	}
	return enc.Encode(summaries)
}
