package obs

import (
	"math/bits"

	"dpsim/internal/metrics"
)

// latencyBuckets is the number of power-of-two histogram buckets:
// bucket i counts latencies in [2^(i-1), 2^i) microseconds (bucket 0 is
// everything under 1µs), and the last bucket absorbs the overflow.
const latencyBuckets = 22

// LatencyHist is a streaming latency summary: a power-of-two bucket
// histogram over microseconds plus the metrics package's Welford and
// MinMax accumulators for the moments and extremes. The zero value is
// ready to use, and Add never allocates — it sits on the simulator's
// scheduler-invocation hot path.
type LatencyHist struct {
	buckets [latencyBuckets]uint64
	w       metrics.Welford
	mm      metrics.MinMax
}

// Add folds one latency observation in nanoseconds.
func (h *LatencyHist) Add(ns int64) {
	if ns < 0 {
		ns = 0
	}
	us := uint64(ns) / 1000
	i := bits.Len64(us)
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	h.buckets[i]++
	h.w.Add(float64(ns) / 1000)
	h.mm.Add(float64(ns) / 1000)
}

// N returns the number of observations.
func (h *LatencyHist) N() int { return h.w.N() }

// MeanUS, MinUS, MaxUS and CI95US report the moments and extremes in
// microseconds (0 before any observation).
func (h *LatencyHist) MeanUS() float64 { return h.w.Mean() }
func (h *LatencyHist) MinUS() float64  { return h.mm.Min() }
func (h *LatencyHist) MaxUS() float64  { return h.mm.Max() }
func (h *LatencyHist) CI95US() float64 { return h.w.CI95() }

// LatencyBucket is one histogram bucket of the export: Count
// observations at most LeUS microseconds (and above the previous
// bucket's bound). The final bucket's bound is 0, meaning "and above".
type LatencyBucket struct {
	LeUS  uint64 `json:"le_us"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty prefix of the histogram as exportable
// bounds: trailing all-zero buckets are trimmed.
func (h *LatencyHist) Buckets() []LatencyBucket {
	last := -1
	for i, c := range h.buckets {
		if c > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]LatencyBucket, 0, last+1)
	for i := 0; i <= last; i++ {
		b := LatencyBucket{Count: h.buckets[i]}
		if i < latencyBuckets-1 {
			b.LeUS = uint64(1) << i
		}
		out = append(out, b)
	}
	return out
}
