package obs

import (
	"math/bits"

	"dpsim/internal/metrics"
)

// latencyBuckets is the number of power-of-two histogram buckets:
// bucket i counts latencies in [2^(i-1), 2^i) microseconds (bucket 0 is
// everything under 1µs), and the last bucket absorbs the overflow.
const latencyBuckets = 22

// LatencyBucketCount is the shared log-spaced bucketing scheme's bucket
// count — internal/telemetry histograms reuse the same layout so
// simulated-time and wall-clock latencies bucket identically.
func LatencyBucketCount() int { return latencyBuckets }

// LatencyBucketIndex maps a duration in nanoseconds onto its bucket:
// power-of-two microsecond buckets, with negatives clamped to bucket 0
// and the last bucket absorbing the overflow.
func LatencyBucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns) / 1000)
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	return i
}

// LatencyBucketBoundUS returns bucket i's inclusive upper bound in
// microseconds; the final bucket is unbounded and reports 0 ("+Inf").
func LatencyBucketBoundUS(i int) uint64 {
	if i >= latencyBuckets-1 {
		return 0
	}
	return uint64(1) << i
}

// LatencyHist is a streaming latency summary: a power-of-two bucket
// histogram over microseconds plus the metrics package's Welford and
// MinMax accumulators for the moments and extremes. The zero value is
// ready to use, and Add never allocates — it sits on the simulator's
// scheduler-invocation hot path.
type LatencyHist struct {
	buckets [latencyBuckets]uint64
	w       metrics.Welford
	mm      metrics.MinMax
}

// Add folds one latency observation in nanoseconds.
func (h *LatencyHist) Add(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[LatencyBucketIndex(ns)]++
	h.w.Add(float64(ns) / 1000)
	h.mm.Add(float64(ns) / 1000)
}

// N returns the number of observations.
func (h *LatencyHist) N() int { return h.w.N() }

// MeanUS, MinUS, MaxUS and CI95US report the moments and extremes in
// microseconds (0 before any observation).
func (h *LatencyHist) MeanUS() float64 { return h.w.Mean() }
func (h *LatencyHist) MinUS() float64  { return h.mm.Min() }
func (h *LatencyHist) MaxUS() float64  { return h.mm.Max() }
func (h *LatencyHist) CI95US() float64 { return h.w.CI95() }

// LatencyBucket is one histogram bucket of the export: Count
// observations at most LeUS microseconds (and above the previous
// bucket's bound). The final bucket's bound is 0, meaning "and above".
type LatencyBucket struct {
	LeUS  uint64 `json:"le_us"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty prefix of the histogram as exportable
// bounds: trailing all-zero buckets are trimmed.
func (h *LatencyHist) Buckets() []LatencyBucket {
	last := -1
	for i, c := range h.buckets {
		if c > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]LatencyBucket, 0, last+1)
	for i := 0; i <= last; i++ {
		out = append(out, LatencyBucket{LeUS: LatencyBucketBoundUS(i), Count: h.buckets[i]})
	}
	return out
}
