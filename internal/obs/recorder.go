package obs

// SpanKind classifies a per-job span.
type SpanKind uint8

const (
	// SpanWait covers arrival → first node allocation (queueing delay).
	SpanWait SpanKind = iota
	// SpanRun covers first node allocation → completion.
	SpanRun
	// SpanPhase covers one phase: the previous phase boundary (or first
	// start) → this phase's completion.
	SpanPhase
	// SpanReconfig covers a data-redistribution pause charged by the
	// reconfiguration-cost model.
	SpanReconfig
)

// String names the span kind for exports.
func (k SpanKind) String() string {
	switch k {
	case SpanWait:
		return "wait"
	case SpanRun:
		return "run"
	case SpanPhase:
		return "phase"
	case SpanReconfig:
		return "reconfig"
	}
	return "unknown"
}

// Span is one completed interval on a job's timeline, in virtual
// seconds. Phase is the 0-based phase index for SpanPhase spans, -1
// otherwise.
type Span struct {
	JobID int
	Kind  SpanKind
	Phase int
	Start float64
	End   float64
}

// CapacityStep is one capacity transition: a change taking effect, or —
// with Notice set — a reclaim-notice window opening toward Capacity.
type CapacityStep struct {
	T        float64
	Capacity int
	Notice   bool
}

// Preemption is one whole-job eviction by a capacity drop.
type Preemption struct {
	T     float64
	JobID int
}

// Charge is one reconfiguration-cost charge (see ChargeKind for units).
type Charge struct {
	T      float64
	JobID  int
	Kind   ChargeKind
	Amount float64
}

// Config bounds a Recorder's memory. Every stream is a ring keeping its
// newest entries; zero fields take the defaults below.
type Config struct {
	// Label names the run in exports (typically the scheduler spec).
	Label string
	// MaxSamples bounds the retained time-series samples (default 65536).
	MaxSamples int
	// MaxSpans bounds the retained per-job spans (default 65536).
	MaxSpans int
	// MaxEvents bounds each of the capacity-step, preemption and charge
	// streams (default 16384).
	MaxEvents int
}

// jobTrack is the recorder's open bookkeeping for one in-flight job.
type jobTrack struct {
	arrival    float64
	firstStart float64 // -1 until the job first holds nodes
	boundary   float64 // start instant of the current phase span
}

// Recorder is the built-in Probe implementation: it turns the hook
// stream into per-job wait/run/phase/reconfig spans, fixed-interval
// time-series samples, capacity/preemption/charge event logs, and a
// scheduler-invocation latency histogram. All streams live in
// preallocated ring buffers (Config caps them), so recording an
// arbitrarily long run costs bounded memory and bounded amortized
// allocation per event.
//
// A Recorder observes exactly one simulation run; it is not safe for
// concurrent use (the simulator is single-threaded).
type Recorder struct {
	label string

	jobs     map[int]*jobTrack
	arrived  int
	finished int

	spans    ring[Span]
	samples  ring[Sample]
	capSteps ring[CapacityStep]
	preempts ring[Preemption]
	charges  ring[Charge]

	invocations int
	latency     LatencyHist

	lostWorkS float64
	redistS   float64
	// end is the latest instant any hook observed — the horizon of the
	// recorded run.
	end float64
}

// NewRecorder returns an empty recorder with the given bounds.
func NewRecorder(cfg Config) *Recorder {
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 65536
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 65536
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 16384
	}
	return &Recorder{
		label:    cfg.Label,
		jobs:     make(map[int]*jobTrack),
		spans:    newRing[Span](cfg.MaxSpans),
		samples:  newRing[Sample](cfg.MaxSamples),
		capSteps: newRing[CapacityStep](cfg.MaxEvents),
		preempts: newRing[Preemption](cfg.MaxEvents),
		charges:  newRing[Charge](cfg.MaxEvents),
	}
}

// Label returns the run label passed at construction.
func (r *Recorder) Label() string { return r.label }

func (r *Recorder) touch(t float64) {
	if t > r.end {
		r.end = t
	}
}

// JobArrive implements Probe.
func (r *Recorder) JobArrive(t float64, jobID int) {
	r.touch(t)
	r.arrived++
	r.jobs[jobID] = &jobTrack{arrival: t, firstStart: -1}
}

// JobFirstStart implements Probe.
func (r *Recorder) JobFirstStart(t float64, jobID int) {
	r.touch(t)
	j := r.jobs[jobID]
	if j == nil || j.firstStart >= 0 {
		return
	}
	j.firstStart = t
	j.boundary = t
	r.spans.push(Span{JobID: jobID, Kind: SpanWait, Phase: -1, Start: j.arrival, End: t})
}

// PhaseDone implements Probe.
func (r *Recorder) PhaseDone(t float64, jobID, phase, phases int) {
	r.touch(t)
	j := r.jobs[jobID]
	if j == nil {
		return
	}
	start := j.boundary
	if j.firstStart < 0 {
		start = j.arrival
	}
	r.spans.push(Span{JobID: jobID, Kind: SpanPhase, Phase: phase, Start: start, End: t})
	j.boundary = t
}

// JobFinish implements Probe.
func (r *Recorder) JobFinish(t float64, jobID int) {
	r.touch(t)
	r.finished++
	j := r.jobs[jobID]
	if j == nil {
		return
	}
	start := j.firstStart
	if start < 0 {
		start = j.arrival
	}
	r.spans.push(Span{JobID: jobID, Kind: SpanRun, Phase: -1, Start: start, End: t})
	delete(r.jobs, jobID)
}

// SchedulerInvoke implements Probe.
func (r *Recorder) SchedulerInvoke(t float64, inv SchedulerInvocation) {
	r.touch(t)
	r.invocations++
	r.latency.Add(inv.WallNS)
}

// CapacityNotice implements Probe.
func (r *Recorder) CapacityNotice(t float64, target int) {
	r.touch(t)
	r.capSteps.push(CapacityStep{T: t, Capacity: target, Notice: true})
}

// CapacityChange implements Probe.
func (r *Recorder) CapacityChange(t float64, capacity int) {
	r.touch(t)
	r.capSteps.push(CapacityStep{T: t, Capacity: capacity})
}

// Preempt implements Probe.
func (r *Recorder) Preempt(t float64, jobID int) {
	r.touch(t)
	r.preempts.push(Preemption{T: t, JobID: jobID})
}

// ReconfigCharge implements Probe.
func (r *Recorder) ReconfigCharge(t float64, jobID int, kind ChargeKind, amount float64) {
	r.touch(t)
	r.charges.push(Charge{T: t, JobID: jobID, Kind: kind, Amount: amount})
	switch kind {
	case ChargeRedistribution:
		r.redistS += amount
		r.spans.push(Span{JobID: jobID, Kind: SpanReconfig, Phase: -1, Start: t, End: t + amount})
	case ChargeLostWork:
		r.lostWorkS += amount
	}
}

// TimeSample implements Probe.
func (r *Recorder) TimeSample(s Sample) {
	r.touch(s.T)
	r.samples.push(s)
}

// Samples returns the retained time-series samples oldest-first.
func (r *Recorder) Samples() []Sample { return r.samples.items() }

// Spans returns the retained spans in recording order (completion
// order, since every span is pushed when it closes).
func (r *Recorder) Spans() []Span { return r.spans.items() }

// CapacitySteps returns the retained capacity transitions oldest-first.
func (r *Recorder) CapacitySteps() []CapacityStep { return r.capSteps.items() }

// Preemptions returns the retained whole-job evictions oldest-first.
func (r *Recorder) Preemptions() []Preemption { return r.preempts.items() }

// Charges returns the retained reconfiguration charges oldest-first.
func (r *Recorder) Charges() []Charge { return r.charges.items() }

// Latency returns the scheduler-invocation latency histogram.
func (r *Recorder) Latency() *LatencyHist { return &r.latency }

// End returns the latest instant any hook observed.
func (r *Recorder) End() float64 { return r.end }
