package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace-event record (the "trace event format"
// consumed by Perfetto and chrome://tracing). Timestamps and durations
// are microseconds of virtual time.
type TraceEvent struct {
	Name string `json:"name"`
	// Cat is the event category (comma-separated tags in the format).
	Cat string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "i" instant, "C" counter,
	// "M" metadata.
	Ph   string  `json:"ph"`
	TsUS float64 `json:"ts"`
	// DurUS is the duration of "X" complete events.
	DurUS float64 `json:"dur,omitempty"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	// Scope is the instant-event scope ("t" = thread).
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace accumulates trace events from one or more runs (one process per
// run) for a single JSON export.
type Trace struct {
	events []TraceEvent
}

// Add appends an arbitrary event.
func (t *Trace) Add(e TraceEvent) { t.events = append(t.events, e) }

// Complete appends an "X" complete event spanning [startS, endS] virtual
// seconds.
func (t *Trace) Complete(pid, tid int, name, cat string, startS, endS float64, args map[string]any) {
	t.Add(TraceEvent{Name: name, Cat: cat, Ph: "X", TsUS: startS * 1e6, DurUS: (endS - startS) * 1e6, PID: pid, TID: tid, Args: args})
}

// Instant appends an "i" thread-scoped instant event.
func (t *Trace) Instant(pid, tid int, name, cat string, atS float64, args map[string]any) {
	t.Add(TraceEvent{Name: name, Cat: cat, Ph: "i", TsUS: atS * 1e6, PID: pid, TID: tid, Scope: "t", Args: args})
}

// ProcessInstant appends an "i" process-scoped instant event (no track).
func (t *Trace) ProcessInstant(pid int, name, cat string, atS float64, args map[string]any) {
	t.Add(TraceEvent{Name: name, Cat: cat, Ph: "i", TsUS: atS * 1e6, PID: pid, Scope: "p", Args: args})
}

// Counter appends a "C" counter event: each args key becomes one series
// of the counter track.
func (t *Trace) Counter(pid int, name string, atS float64, args map[string]any) {
	t.Add(TraceEvent{Name: name, Ph: "C", TsUS: atS * 1e6, PID: pid, Args: args})
}

// NameProcess attaches a process_name metadata record: the run's track
// group label in the viewer.
func (t *Trace) NameProcess(pid int, name string) {
	t.Add(TraceEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
}

// NameThread attaches a thread_name metadata record: one track's label.
func (t *Trace) NameThread(pid, tid int, name string) {
	t.Add(TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name}})
}

// traceFile is the JSON Object Format envelope of the trace-event spec.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON renders the trace as a trace-event JSON object that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Output is
// deterministic: events serialize in insertion order and args keys in
// sorted order.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	events := t.events
	if events == nil {
		events = []TraceEvent{}
	}
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// AppendTrace renders the recorder's streams into tr as one process:
// the process is named by the recorder's label, every job becomes a
// track (thread) carrying its wait/run/phase/reconfig spans and
// preemption instants, and the time series and capacity steps become
// counter tracks ("jobs", "nodes", "capacity").
func (r *Recorder) AppendTrace(tr *Trace, pid int) {
	label := r.label
	if label == "" {
		label = fmt.Sprintf("run %d", pid)
	}
	tr.NameProcess(pid, label)
	jobIDs := make(map[int]bool)
	for _, s := range r.Spans() {
		jobIDs[s.JobID] = true
		name := s.Kind.String()
		if s.Kind == SpanPhase {
			name = fmt.Sprintf("phase %d", s.Phase)
		}
		tr.Complete(pid, s.JobID, name, s.Kind.String(), s.Start, s.End, nil)
	}
	for _, p := range r.Preemptions() {
		jobIDs[p.JobID] = true
		tr.Instant(pid, p.JobID, "preempt", "capacity", p.T, nil)
	}
	for _, c := range r.Charges() {
		if c.Kind != ChargeLostWork {
			continue // redistribution charges already appear as reconfig spans
		}
		jobIDs[c.JobID] = true
		tr.Instant(pid, c.JobID, "lost-work", "reconfig", c.T,
			map[string]any{"work_s": c.Amount})
	}
	ids := make([]int, 0, len(jobIDs))
	for id := range jobIDs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tr.NameThread(pid, id, fmt.Sprintf("job %d", id))
	}
	for _, s := range r.Samples() {
		tr.Counter(pid, "jobs", s.T, map[string]any{"waiting": s.Waiting, "running": s.Running})
		tr.Counter(pid, "nodes", s.T, map[string]any{"allocated": s.Allocated, "available": s.Available})
	}
	for _, c := range r.CapacitySteps() {
		if c.Notice {
			tr.ProcessInstant(pid, "capacity-notice", "capacity", c.T,
				map[string]any{"target": c.Capacity})
			continue
		}
		tr.Counter(pid, "capacity", c.T, map[string]any{"capacity": c.Capacity})
	}
}
