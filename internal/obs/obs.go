// Package obs is the simulator's observability layer: typed probe hooks
// at every cluster.Sim state transition, built-in recorders (per-job
// spans, fixed-interval time series, scheduler-invocation latency
// histograms), and exporters (Chrome trace-event JSON for
// Perfetto/chrome://tracing, time-series CSV, run-summary JSON).
//
// The subsystem is opt-in and provably free when off: the simulator
// invokes a Probe through a nil-checked field, so the disabled path adds
// one predicted-not-taken branch per hook site and stays inside the
// zero-allocation steady-state contract (see
// TestProcessNextEventZeroAllocSteadyState in internal/cluster). With
// probes attached, the built-in Recorder appends into preallocated ring
// buffers, so steady-state allocation stays bounded and amortized —
// asserted by the probe-attached variants of the same test matrix.
//
// The package is a leaf below the simulator: internal/cluster imports
// obs (for the Probe contract), never the reverse, so recorders see only
// plain values — job IDs, instants, gauges — and any caller-side
// implementation of Probe plugs into the simulator unchanged.
package obs

// Sample is one fixed-interval reading of the cluster's gauges, taken by
// the simulator's sampler event at t = k·dt on the capacity event tier.
type Sample struct {
	// T is the virtual instant of the sample in seconds.
	T float64
	// Waiting counts active jobs holding no nodes (the queue depth);
	// Running counts jobs holding at least one node.
	Waiting int
	Running int
	// Allocated is the total nodes granted to running jobs; Available is
	// the pool capacity currently in effect (after capacity events).
	Allocated int
	Available int
	// Utilization is Allocated/Available — the instantaneous fraction of
	// the offered pool that is busy (0 when no capacity is available).
	Utilization float64
}

// SchedulerInvocation describes one scheduler call on the simulator's
// hot path: its real (wall-clock) cost and the allocation delta it
// produced. Wall-clock time is measured only when a probe is attached,
// so the disabled path never reads the host clock.
type SchedulerInvocation struct {
	// WallNS is the wall-clock cost of the policy's Allocate call in
	// nanoseconds.
	WallNS int64
	// Changed counts the jobs whose allocation differs from the
	// pre-event snapshot (the allocation delta).
	Changed int
	// Active is the number of active jobs the policy saw; Allocated is
	// the total nodes granted on return.
	Active    int
	Allocated int
}

// ChargeKind classifies a reconfiguration charge.
type ChargeKind uint8

const (
	// ChargeRedistribution is a data-redistribution pause in seconds:
	// the job stalls for Amount seconds before resuming at the new rate.
	ChargeRedistribution ChargeKind = iota
	// ChargeLostWork is in-phase progress rolled back by an abrupt
	// (no-notice) capacity reclaim, in work-seconds.
	ChargeLostWork
)

// String names the charge kind for exports.
func (k ChargeKind) String() string {
	switch k {
	case ChargeRedistribution:
		return "redistribution"
	case ChargeLostWork:
		return "lost-work"
	}
	return "unknown"
}

// Probe receives typed callbacks at every simulator state transition.
// All instants are virtual seconds. Implementations must not mutate
// simulator state (they see none) and must be cheap: hooks run on the
// event-loop hot path. The built-in Recorder satisfies the bounded-
// amortized-allocation contract via preallocated ring buffers;
// third-party probes should follow suit.
//
// Attach a probe with cluster.Sim.SetProbe; a nil probe (the default)
// makes every hook site a single not-taken branch.
type Probe interface {
	// JobArrive fires when a job enters the system (closed workload or
	// Inject).
	JobArrive(t float64, jobID int)
	// JobFirstStart fires the first time a job holds nodes: t-arrival is
	// the job's queueing delay.
	JobFirstStart(t float64, jobID int)
	// PhaseDone fires when a job completes phase index phase (0-based)
	// of phases total.
	PhaseDone(t float64, jobID, phase, phases int)
	// JobFinish fires when a job completes its last phase.
	JobFinish(t float64, jobID int)
	// SchedulerInvoke fires after every scheduler call with its
	// wall-clock cost and allocation delta. The simulator coalesces
	// scheduling per instant — all job and capacity events at one
	// virtual instant share a single invocation — so this hook fires
	// once per dirty instant, not once per event (docs/performance.md).
	SchedulerInvoke(t float64, inv SchedulerInvocation)
	// CapacityNotice fires when a reclaim-notice window opens: the
	// scheduler's usable pool shrinks to target ahead of the drop.
	CapacityNotice(t float64, target int)
	// CapacityChange fires when a capacity change takes effect.
	CapacityChange(t float64, capacity int)
	// Preempt fires when a capacity drop evicts a whole running job.
	Preempt(t float64, jobID int)
	// ReconfigCharge fires when the reconfiguration-cost model charges a
	// job: a redistribution pause (seconds) or rolled-back lost work
	// (work-seconds), per ChargeKind.
	ReconfigCharge(t float64, jobID int, kind ChargeKind, amount float64)
	// TimeSample fires at every fixed-interval sampler event (enabled
	// with cluster.Sim.SetSampleInterval).
	TimeSample(s Sample)
}
