package appmodel

import (
	"strings"
	"testing"
)

// TestNamesListsBuiltins: the registry must expose the five analytical
// families plus the three classic mix shapes.
func TestNamesListsBuiltins(t *testing.T) {
	want := []string{"amdahl", "comm-bound", "downey", "fixed", "lu", "roofline", "stencil", "synthetic"}
	got := Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestNewCaseInsensitive mirrors the sched registry contract.
func TestNewCaseInsensitive(t *testing.T) {
	m, err := New("AmDaHl", Params{"f": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "amdahl" {
		t.Fatalf("Name = %q", m.Name())
	}
	if _, err := New("no-such-model", nil); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown model error = %v", err)
	}
	if _, ok := ByName("ROOFLINE"); !ok {
		t.Fatal("ByName not case-insensitive")
	}
}

// TestParseFormatSpecRoundTrip: FormatSpec output must resolve back to
// the identical model through ParseSpec, the property grid labels rely
// on.
func TestParseFormatSpecRoundTrip(t *testing.T) {
	specs := []string{
		"fixed",
		"amdahl(f=0.125)",
		"downey(A=24,sigma=0.5)",
		"comm-bound(alpha=0.1,beta=2.5,migrate_s=0.75)",
		"roofline(ckpt_s=2,sat=8)",
	}
	for _, spec := range specs {
		name, params, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := FormatSpec(name, params); got != spec {
			t.Errorf("round-trip %q -> %q", spec, got)
		}
		if _, err := New(name, params); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}

// TestParseSpecRejectsMalformed: parse errors must be loud and early.
func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"", "amdahl(", "amdahl(f=0.1", "(f=1)", "amdahl(f)", "amdahl(=1)",
		"amdahl(f=NaN)", "amdahl(f=+Inf)", "amdahl(f=x)",
	} {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

// TestRegisterPanics: duplicate or empty registrations are programming
// errors.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(name, f)
	}
	mustPanic("", newFixed)
	mustPanic("nilfactory", nil)
	mustPanic("FIXED", newFixed) // case-insensitive duplicate
}
