package appmodel

import (
	"fmt"
	"math"
)

func init() {
	Register("amdahl", newAmdahl)
	Register("downey", newDowney)
	Register("comm-bound", newCommBound)
	Register("roofline", newRoofline)
	Register("fixed", newFixed)
}

// --- amdahl ---

// Amdahl is Amdahl's law with serial fraction F: a fraction F of every
// phase cannot be parallelized, so speedup(n) = n / (1 + F·(n-1)) and
// efficiency decays as 1/(1 + F·(n-1)). It is the classic upper-bound
// model for strong scaling.
type Amdahl struct {
	F float64
	Costs
}

func newAmdahl(p Params) (AppModel, error) {
	if err := p.check("amdahl", "f"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	f := p.Float("f", 0.05)
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("appmodel: amdahl serial fraction f=%g outside [0, 1]", f)
	}
	return Amdahl{F: f, Costs: c}, nil
}

// Name implements AppModel.
func (m Amdahl) Name() string { return "amdahl" }

// Efficiency implements AppModel.
func (m Amdahl) Efficiency(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return 1 / (1 + m.F*float64(nodes-1))
}

// Rate implements AppModel.
func (m Amdahl) Rate(work float64, nodes int) float64 {
	return float64(nodes) * m.Efficiency(work, nodes)
}

// PhaseTime implements AppModel.
func (m Amdahl) PhaseTime(work float64, nodes int) float64 {
	return timeOf(work, m.Rate(work, nodes))
}

// --- downey ---

// Downey is Downey's two-parameter model of parallel speedup ("A model
// for speedup of parallel programs", 1997): A is the application's
// average parallelism, σ (sigma) the coefficient of variance of its
// parallelism profile. σ = 0 is linear speedup up to A; growing σ bends
// the curve toward earlier saturation. Speedup plateaus at A.
type Downey struct {
	A     float64
	Sigma float64
	Costs
}

func newDowney(p Params) (AppModel, error) {
	if err := p.check("downey", "A", "sigma"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	a := p.Float("A", 16)
	sigma := p.Float("sigma", 1)
	if a < 1 {
		return nil, fmt.Errorf("appmodel: downey average parallelism A=%g must be >= 1", a)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("appmodel: downey sigma=%g must be >= 0", sigma)
	}
	return Downey{A: a, Sigma: sigma, Costs: c}, nil
}

// Name implements AppModel.
func (m Downey) Name() string { return "downey" }

// speedup evaluates Downey's piecewise curve at n nodes.
func (m Downey) speedup(nodes int) float64 {
	p := float64(nodes)
	a, s := m.A, m.Sigma
	if s <= 1 {
		// Low variance: linear-ish up to A, bending to the plateau at 2A-1.
		switch {
		case p <= a:
			return a * p / (a + s/2*(p-1))
		case p <= 2*a-1:
			return a * p / (s*(a-0.5) + p*(1-s/2))
		default:
			return a
		}
	}
	// High variance: a single hyperbolic segment up to A + Aσ - σ.
	if p <= a+a*s-s {
		return p * a * (s + 1) / (s*(p+a-1) + a)
	}
	return a
}

// Efficiency implements AppModel.
func (m Downey) Efficiency(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return m.speedup(nodes) / float64(nodes)
}

// Rate implements AppModel.
func (m Downey) Rate(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return m.speedup(nodes)
}

// PhaseTime implements AppModel.
func (m Downey) PhaseTime(work float64, nodes int) float64 {
	if nodes <= 0 {
		return math.Inf(1)
	}
	return timeOf(work, m.speedup(nodes))
}

// --- comm-bound ---

// CommBound is a latency/bandwidth-bound phase in the α–β tradition of
// stencil halo exchanges: compute divides perfectly over the nodes, and
// every multi-node phase additionally pays a fixed latency term Alpha
// plus a bandwidth term Beta/n (the per-node share of the exchanged
// volume): time(w, n) = w/n + α + β/n for n > 1, and w for n = 1.
type CommBound struct {
	Alpha float64
	Beta  float64
	Costs
}

func newCommBound(p Params) (AppModel, error) {
	if err := p.check("comm-bound", "alpha", "beta"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	alpha := p.Float("alpha", 0.1)
	beta := p.Float("beta", 1)
	if alpha < 0 || beta < 0 {
		return nil, fmt.Errorf("appmodel: comm-bound alpha=%g and beta=%g must be >= 0", alpha, beta)
	}
	return CommBound{Alpha: alpha, Beta: beta, Costs: c}, nil
}

// Name implements AppModel.
func (m CommBound) Name() string { return "comm-bound" }

// PhaseTime implements AppModel.
func (m CommBound) PhaseTime(work float64, nodes int) float64 {
	if nodes <= 0 {
		return math.Inf(1)
	}
	if nodes == 1 {
		return work
	}
	n := float64(nodes)
	return work/n + m.Alpha + m.Beta/n
}

// Rate implements AppModel.
func (m CommBound) Rate(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	t := m.PhaseTime(work, nodes)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return work / t
}

// Efficiency implements AppModel.
func (m CommBound) Efficiency(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return m.Rate(work, nodes) / float64(nodes)
}

// --- roofline ---

// Roofline is a memory-bound plateau: compute scales linearly until Sat
// nodes saturate the shared bandwidth, beyond which extra nodes add
// nothing — speedup(n) = min(n, Sat). The sharp knee makes it the
// adversarial case for schedulers that keep growing allocations.
type Roofline struct {
	Sat int
	Costs
}

func newRoofline(p Params) (AppModel, error) {
	if err := p.check("roofline", "sat"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	sat := int(math.Round(p.Float("sat", 8)))
	if sat < 1 {
		return nil, fmt.Errorf("appmodel: roofline saturation sat=%d must be >= 1", sat)
	}
	return Roofline{Sat: sat, Costs: c}, nil
}

// Name implements AppModel.
func (m Roofline) Name() string { return "roofline" }

// Rate implements AppModel.
func (m Roofline) Rate(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	if nodes > m.Sat {
		return float64(m.Sat)
	}
	return float64(nodes)
}

// Efficiency implements AppModel.
func (m Roofline) Efficiency(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return m.Rate(work, nodes) / float64(nodes)
}

// PhaseTime implements AppModel.
func (m Roofline) PhaseTime(work float64, nodes int) float64 {
	return timeOf(work, m.Rate(work, nodes))
}

// --- fixed ---

// Fixed is a rigid application that cannot exploit parallelism: speedup
// is 1 at any allocation, so every extra node is pure waste. It is the
// baseline that separates scheduling gains from speedup-curve gains.
type Fixed struct {
	Costs
}

func newFixed(p Params) (AppModel, error) {
	if err := p.check("fixed"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	return Fixed{Costs: c}, nil
}

// Name implements AppModel.
func (m Fixed) Name() string { return "fixed" }

// Rate implements AppModel.
func (m Fixed) Rate(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return 1
}

// Efficiency implements AppModel.
func (m Fixed) Efficiency(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return 1 / float64(nodes)
}

// PhaseTime implements AppModel.
func (m Fixed) PhaseTime(work float64, nodes int) float64 {
	if nodes <= 0 {
		return math.Inf(1)
	}
	return work
}
