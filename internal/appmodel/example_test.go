package appmodel_test

import (
	"fmt"

	"dpsim/internal/appmodel"
)

// ExampleNew constructs a model from the registry and evaluates its
// speedup curve: Amdahl's law with a 10% serial fraction plateaus at
// 1/f = 10 regardless of the allocation.
func ExampleNew() {
	m, err := appmodel.New("amdahl", appmodel.Params{"f": 0.1})
	if err != nil {
		panic(err)
	}
	for _, nodes := range []int{1, 4, 16, 64} {
		fmt.Printf("%2d nodes: speedup %.2f, efficiency %.2f\n",
			nodes, m.Rate(100, nodes), m.Efficiency(100, nodes))
	}
	// Output:
	//  1 nodes: speedup 1.00, efficiency 1.00
	//  4 nodes: speedup 3.08, efficiency 0.77
	// 16 nodes: speedup 6.40, efficiency 0.40
	// 64 nodes: speedup 8.77, efficiency 0.14
}

// ExampleParseSpec resolves a "name(key=value,...)" spec string — the
// form scenario files, sweep-grid labels and the CLIs' -appmodels flag
// use — back to a constructed model.
func ExampleParseSpec() {
	name, params, err := appmodel.ParseSpec("roofline(sat=4)")
	if err != nil {
		panic(err)
	}
	m, err := appmodel.New(name, params)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name())
	fmt.Printf("speedup on 16 nodes: %g\n", m.Rate(100, 16))
	fmt.Println(appmodel.FormatSpec(name, params))
	// Output:
	// roofline
	// speedup on 16 nodes: 4
	// roofline(sat=4)
}
