package appmodel

import (
	"fmt"
	"math"
)

func init() {
	Register("lu", newLU)
	Register("synthetic", newSynthetic)
	Register("stencil", newStencil)
}

// CommFactor is the simulator's classic efficiency family: a phase with
// communication/imbalance factor C runs at efficiency
// eff(p) = 1/(1 + C·(p-1)) on p nodes — exactly the curve
// sched.Phase.Efficiency computes from its Comm field. The simulator's
// historical job mixes (lu, synthetic, stencil) are registered instances
// of this family, which is what keeps their results bit-identical
// through the registry: the arithmetic here is expression-for-expression
// the legacy formula.
//
// Note that eff(p) = 1/(1 + C·(p-1)) is algebraically Amdahl's law with
// serial fraction C; the two registered names differ in parameterization
// and intent (a measured communication factor vs. an assumed serial
// fraction), not in shape.
type CommFactor struct {
	// model is the registered name that built this instance ("lu",
	// "synthetic", "stencil").
	model string
	// C is the communication/imbalance factor.
	C float64
	Costs
}

// Comm builds a CommFactor of the given registered family name with an
// already-computed factor — the constructor callers use when C is
// already known (tests, lowering comparisons) without re-deriving it.
func Comm(model string, c float64) CommFactor {
	return CommFactor{model: model, C: c}
}

// Name implements AppModel.
func (m CommFactor) Name() string { return m.model }

// Efficiency implements AppModel. The expression is kept identical to
// the legacy sched.Phase.Efficiency so attaching the model is
// bit-invisible.
func (m CommFactor) Efficiency(work float64, nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	return 1 / (1 + m.C*float64(nodes-1))
}

// Rate implements AppModel, mirroring the legacy sched.Phase.Rate
// expression float64(p)·eff(p) exactly.
func (m CommFactor) Rate(work float64, nodes int) float64 {
	return float64(nodes) * m.Efficiency(work, nodes)
}

// PhaseTime implements AppModel.
func (m CommFactor) PhaseTime(work float64, nodes int) float64 {
	return timeOf(work, m.Rate(work, nodes))
}

// LUPhase returns the model of LU iteration k of blocks total: the
// communication factor rises inversely with the remaining block count,
// matching cluster.LUProfile's measured efficiency decay
// expression-for-expression.
func LUPhase(blocks, k int) CommFactor {
	rem := float64(blocks - k)
	return CommFactor{model: "lu", C: 0.08 + 0.25/math.Max(rem, 1)}
}

// newLU is the registry factory for one LU iteration; the scenario layer
// uses LUPhase directly (the factor varies per phase).
func newLU(p Params) (AppModel, error) {
	if err := p.check("lu", "blocks", "k"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	blocks := int(math.Round(p.Float("blocks", 8)))
	k := int(math.Round(p.Float("k", 0)))
	if blocks < 1 {
		return nil, fmt.Errorf("appmodel: lu blocks=%d must be >= 1", blocks)
	}
	if k < 0 || k >= blocks {
		return nil, fmt.Errorf("appmodel: lu iteration k=%d outside [0, %d)", k, blocks)
	}
	m := LUPhase(blocks, k)
	m.Costs = c
	return m, nil
}

// newSynthetic registers the synthetic mix's uniform-phase model: the
// communication factor is taken verbatim.
func newSynthetic(p Params) (AppModel, error) {
	if err := p.check("synthetic", "comm"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	comm := p.Float("comm", 0)
	if comm < 0 {
		return nil, fmt.Errorf("appmodel: synthetic comm=%g must be >= 0", comm)
	}
	return CommFactor{model: "synthetic", C: comm, Costs: c}, nil
}

// StencilWork is the serial work of one Jacobi heat-diffusion sweep
// over an n×n grid: the 5-flops-per-cell pass at the given node speed.
// flops <= 0 selects the paper's UltraSparc II calibration (63e6). The
// expressions mirror the scenario layer's historical stencilProfile
// bit-for-bit; the scenario layer's stencil mix uses this same function
// so work and comm can never drift apart.
func StencilWork(n int, flops float64) float64 {
	if flops <= 0 {
		flops = 63e6
	}
	return 5 * float64(n) * float64(n) / flops
}

// StencilComm derives the communication factor of the same sweep: the
// ratio of one band's halo exchange (two n-row messages over the
// paper's Fast Ethernet, 100 µs + 8n/12.5e6 s each) to its share of the
// compute.
func StencilComm(n int, flops float64) float64 {
	halo := 2 * (100e-6 + 8*float64(n)/12.5e6)
	return halo / StencilWork(n, flops)
}

// newStencil registers the stencil mix's model, parameterized by the
// grid size and per-node flops rate.
func newStencil(p Params) (AppModel, error) {
	if err := p.check("stencil", "grid_n", "flops"); err != nil {
		return nil, err
	}
	c, err := costsFromParams(p)
	if err != nil {
		return nil, err
	}
	n := int(math.Round(p.Float("grid_n", 512)))
	if n < 1 {
		return nil, fmt.Errorf("appmodel: stencil grid_n=%d must be >= 1", n)
	}
	flops := p.Float("flops", 0)
	if flops < 0 {
		return nil, fmt.Errorf("appmodel: stencil flops=%g must be >= 0 (0 = paper calibration)", flops)
	}
	return CommFactor{model: "stencil", C: StencilComm(n, flops), Costs: c}, nil
}
