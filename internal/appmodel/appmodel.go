// Package appmodel is the application performance-model subsystem of the
// malleable cluster simulator: pluggable analytical models of how one
// phase's execution time responds to the number of allocated nodes.
//
// The paper's core object is the application — a parallel program whose
// execution time varies with a dynamically changing node allocation. This
// package makes that response curve a first-class, pluggable axis,
// mirroring the design of the scheduling-policy subsystem
// (internal/sched): an AppModel interface, a self-registering
// case-insensitive registry (Register/New/ByName/Names), Params for
// construction parameters, and "name(key=value,...)" spec strings via
// ParseSpec/FormatSpec that round-trip through scenario JSON, sweep-grid
// labels and CLI flags.
//
// Built-in models:
//
//   - amdahl — Amdahl's law with serial fraction f:
//     speedup(n) = n / (1 + f·(n-1)).
//   - downey — Downey's A–σ model of malleable-job speedup (average
//     parallelism A, coefficient of variance σ).
//   - comm-bound — latency/bandwidth-bound stencil-style phase:
//     time(w, n) = w/n + α + β/n for n > 1.
//   - roofline — linear speedup up to a memory-bandwidth saturation
//     point: speedup(n) = min(n, sat).
//   - fixed — a rigid application: speedup 1 at any allocation.
//   - lu, synthetic, stencil — the simulator's classic job mixes,
//     re-expressed as registered models of the communication-factor
//     family eff(p) = 1/(1 + c·(p-1)) (see CommFactor).
//
// Every built-in model also accepts the shared reconfiguration
// parameters migrate_s and ckpt_s (see Costs): models price their own
// migration pauses and checkpoint rollback distance, and the cluster
// simulator charges them through its existing reconfiguration-cost path.
//
// Model evaluation sits on the scheduler-invocation hot path: a job
// carrying a model (sched.Job.Model) has every phase's rate and
// efficiency evaluated through it, at every scheduling event.
// Implementations must therefore be allocation-free per call — pure
// float math over parameters fixed at construction. Cost-free
// comm-factor models are lowered onto the phase's Comm field by the
// scenario layer (the curves are identical by construction), so the
// classic workloads keep the simulator's inlined fast path.
package appmodel

import "math"

// AppModel is one application performance model: a response curve from
// (serial work, node allocation) to execution behavior. Implementations
// must be immutable after construction and allocation-free per call —
// they are evaluated inside the simulator's zero-allocation event loop.
//
// The three methods are consistent views of one curve:
// PhaseTime = work/Rate, Efficiency = Rate/nodes. Rate is the primary
// quantity the simulator consumes (work-seconds of progress per
// wall-clock second, i.e. the speedup over serial execution).
type AppModel interface {
	// Name returns the model's canonical registered name.
	Name() string
	// PhaseTime returns the wall-clock seconds needed to execute a phase
	// of `work` serial work-seconds on `nodes` nodes. It returns +Inf
	// when nodes <= 0 (no progress without an allocation).
	PhaseTime(work float64, nodes int) float64
	// Rate returns the phase's progress in work-seconds per wall-clock
	// second on `nodes` nodes — the speedup over serial execution. It
	// returns 0 when nodes <= 0.
	Rate(work float64, nodes int) float64
	// Efficiency returns Rate/nodes, the per-node efficiency in (0, 1].
	// It returns 0 when nodes <= 0.
	Efficiency(work float64, nodes int) float64
}

// Reconfigurer is the optional cost interface of a model: models that
// implement it price their own dynamic-reconfiguration behavior, and the
// cluster simulator charges the result through its existing
// reconfiguration-cost path (cluster.ReconfigCost), on top of the
// cluster-wide per-node costs.
type Reconfigurer interface {
	// MigrationS returns the extra seconds of redistribution pause
	// charged when a running job is resized from `from` to `to` nodes
	// (both > 0) — repartitioning, checkpoint/restart, process
	// migration. It is added to the cluster's per-node redistribution
	// charge for the same resize.
	MigrationS(from, to int) float64
	// CheckpointLossS returns the extra work-seconds lost per node
	// abruptly reclaimed from the job (no-notice capacity drop) — the
	// rollback distance to the model's last consistent checkpoint. It is
	// added to the cluster's per-node lost-work charge.
	CheckpointLossS() float64
}

// Costs is the shared migration/checkpoint pricing embedded by every
// built-in model, parsed from the common migrate_s and ckpt_s
// parameters. The zero value prices nothing, leaving the cluster-wide
// reconfiguration-cost model alone.
type Costs struct {
	// MigrateS is a flat pause in seconds charged per resize of a
	// running job (the model's repartitioning time).
	MigrateS float64
	// CkptS is the work-seconds lost per abruptly reclaimed node (the
	// model's checkpoint distance).
	CkptS float64
}

// MigrationS implements Reconfigurer.
func (c Costs) MigrationS(from, to int) float64 { return c.MigrateS }

// CheckpointLossS implements Reconfigurer.
func (c Costs) CheckpointLossS() float64 { return c.CkptS }

// costsFromParams extracts the shared migrate_s/ckpt_s parameters; the
// caller's Params.check must already allow both keys.
func costsFromParams(p Params) (Costs, error) {
	c := Costs{MigrateS: p.Float("migrate_s", 0), CkptS: p.Float("ckpt_s", 0)}
	if c.MigrateS < 0 || c.CkptS < 0 {
		return Costs{}, errNegativeCost
	}
	return c, nil
}

// timeOf converts a speedup into a phase time, guarding the no-progress
// case: a non-positive rate means the phase never completes.
func timeOf(work, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return work / rate
}
