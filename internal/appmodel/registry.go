package appmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var errNegativeCost = errors.New("appmodel: migrate_s and ckpt_s must be >= 0")

// Params carries a model's construction parameters, as decoded from a
// scenario file's appmodels block or a CLI "name(key=value,...)" spec.
// All values are float64; factories round where an integer is meant.
type Params map[string]float64

// Float returns the parameter's value, or def when the key is absent.
func (p Params) Float(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// check rejects any key outside the allowed set — a misspelled parameter
// must fail loudly at construction, not silently fall back to a default.
// The shared cost parameters migrate_s and ckpt_s are always allowed.
func (p Params) check(model string, allowed ...string) error {
	allowed = append(allowed, "migrate_s", "ckpt_s")
	for key := range p {
		ok := false
		for _, a := range allowed {
			if key == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("appmodel: %s: unknown parameter %q (valid: %s)",
				model, key, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// Factory constructs a model instance from its parameters. It must
// reject unknown or out-of-range parameters.
type Factory func(p Params) (AppModel, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a model factory under its canonical (lower-case) name.
// Built-in models self-register from init functions; registering a
// duplicate or empty name panics — it is a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("appmodel: Register with empty name or nil factory")
	}
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic("appmodel: duplicate model " + key)
	}
	registry[key] = f
}

// Names lists the registered model names in canonical (alphabetical)
// order — the valid values for scenario files and CLI flags (plus the
// scenario-level sentinel "mix", which selects each mix component's
// native model and is not itself registered here).
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New constructs the named model with the given parameters,
// case-insensitively. Models are immutable, but constructing per use is
// cheap and keeps the API parallel to sched.New.
func New(name string, p Params) (AppModel, error) {
	regMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("appmodel: unknown model %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	return f(p)
}

// ByName resolves a model with default parameters (the form used by
// scenario files and CLI flags that pass a bare name).
func ByName(name string) (AppModel, bool) {
	m, err := New(name, nil)
	if err != nil {
		return nil, false
	}
	return m, true
}

// ParseSpec splits a CLI/label model spec into name and parameters:
// either a bare "name" or "name(key=value,key2=value2)". It is the
// inverse of FormatSpec.
func ParseSpec(spec string) (string, Params, error) {
	spec = strings.TrimSpace(spec)
	open := strings.IndexByte(spec, '(')
	if open < 0 {
		if spec == "" {
			return "", nil, fmt.Errorf("appmodel: empty model spec")
		}
		return spec, nil, nil
	}
	if !strings.HasSuffix(spec, ")") {
		return "", nil, fmt.Errorf("appmodel: model spec %q: missing ')'", spec)
	}
	name := strings.TrimSpace(spec[:open])
	if name == "" {
		return "", nil, fmt.Errorf("appmodel: model spec %q has no name", spec)
	}
	body := spec[open+1 : len(spec)-1]
	params := Params{}
	if strings.TrimSpace(body) == "" {
		return name, params, nil
	}
	for _, kv := range strings.Split(body, ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("appmodel: model spec %q: parameter %q is not key=value", spec, kv)
		}
		key := strings.TrimSpace(kv[:eq])
		val, err := strconv.ParseFloat(strings.TrimSpace(kv[eq+1:]), 64)
		// ParseFloat accepts "NaN"/"Inf", and NaN slips through every
		// range check a factory can write (v <= 0 is false) — reject
		// non-finite values at the parse boundary.
		if key == "" || err != nil || math.IsNaN(val) || math.IsInf(val, 0) {
			return "", nil, fmt.Errorf("appmodel: model spec %q: bad parameter %q", spec, kv)
		}
		params[key] = val
	}
	return name, params, nil
}

// FormatSpec renders a (name, params) pair as the canonical spec string:
// the bare name, or "name(key=value,...)" with keys sorted. %g float
// rendering round-trips exactly through ParseSpec, so a grid label built
// with FormatSpec resolves back to the identical model.
func FormatSpec(name string, p Params) string {
	if len(p) == 0 {
		return name
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, strconv.FormatFloat(p[k], 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}
