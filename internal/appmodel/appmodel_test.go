package appmodel

import (
	"math"
	"testing"
)

// TestModelContracts checks the AppModel consistency laws every
// registered model must obey at default parameters: serial execution is
// the baseline (rate 1 at one node), the three views agree
// (PhaseTime = work/Rate, Efficiency = Rate/n), speedup never exceeds
// the allocation, and a non-positive allocation makes no progress.
func TestModelContracts(t *testing.T) {
	const work = 120.0
	for _, name := range Names() {
		m, err := New(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("%s: Name() = %q", name, m.Name())
		}
		if r := m.Rate(work, 1); math.Abs(r-1) > 1e-12 {
			t.Errorf("%s: Rate(work, 1) = %g, want 1", name, r)
		}
		if r := m.Rate(work, 0); r != 0 {
			t.Errorf("%s: Rate(work, 0) = %g, want 0", name, r)
		}
		if e := m.Efficiency(work, 0); e != 0 {
			t.Errorf("%s: Efficiency(work, 0) = %g, want 0", name, e)
		}
		if pt := m.PhaseTime(work, 0); !math.IsInf(pt, 1) {
			t.Errorf("%s: PhaseTime(work, 0) = %g, want +Inf", name, pt)
		}
		for n := 1; n <= 64; n *= 2 {
			rate := m.Rate(work, n)
			if rate <= 0 || rate > float64(n)+1e-12 {
				t.Errorf("%s: Rate(work, %d) = %g outside (0, n]", name, n, rate)
			}
			if e := m.Efficiency(work, n); math.Abs(e-rate/float64(n)) > 1e-12 {
				t.Errorf("%s: Efficiency(work, %d) = %g, want Rate/n = %g", name, n, e, rate/float64(n))
			}
			if pt := m.PhaseTime(work, n); math.Abs(pt-work/rate) > 1e-9 {
				t.Errorf("%s: PhaseTime(work, %d) = %g, want work/Rate = %g", name, n, pt, work/rate)
			}
		}
	}
}

// TestModelShapes pins the distinguishing behavior of each analytical
// family: where the curve bends is the whole point of having five.
func TestModelShapes(t *testing.T) {
	amdahl, err := New("amdahl", Params{"f": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Amdahl's asymptote is 1/f: speedup at huge n approaches 10.
	if s := amdahl.Rate(1, 100000); math.Abs(s-1/0.1) > 0.1 {
		t.Errorf("amdahl(f=0.1) asymptote = %g, want ~10", s)
	}

	downey, err := New("downey", Params{"A": 8, "sigma": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Downey plateaus at the average parallelism A beyond 2A-1 nodes.
	if s := downey.Rate(1, 64); s != 8 {
		t.Errorf("downey(A=8) plateau = %g, want 8", s)
	}
	if s := downey.Rate(1, 2*8-1); math.Abs(s-8) > 1e-9 {
		t.Errorf("downey(A=8, sigma=0.5) at 2A-1 = %g, want 8", s)
	}
	// High-variance branch: still 1 at one node, A at the plateau.
	hv, err := New("downey", Params{"A": 8, "sigma": 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := hv.Rate(1, 64); s != 8 {
		t.Errorf("downey(sigma=3) plateau = %g, want 8", s)
	}
	// σ > 1 saturates earlier relative to its low-variance sibling at
	// mid-range allocations.
	if hv.Rate(1, 6) >= downey.Rate(1, 6) {
		t.Errorf("downey sigma=3 (%g) not below sigma=0.5 (%g) at n=6",
			hv.Rate(1, 6), downey.Rate(1, 6))
	}

	roofline, err := New("roofline", Params{"sat": 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := roofline.Rate(1, 3); s != 3 {
		t.Errorf("roofline below knee = %g, want 3", s)
	}
	if s := roofline.Rate(1, 32); s != 4 {
		t.Errorf("roofline past knee = %g, want 4", s)
	}

	fixed, err := New("fixed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := fixed.Rate(1, 32); s != 1 {
		t.Errorf("fixed speedup = %g, want 1", s)
	}

	cb, err := New("comm-bound", Params{"alpha": 0.5, "beta": 2})
	if err != nil {
		t.Fatal(err)
	}
	// time(w, n) = w/n + α + β/n for n > 1.
	if pt := cb.PhaseTime(100, 4); math.Abs(pt-(100.0/4+0.5+2.0/4)) > 1e-12 {
		t.Errorf("comm-bound time = %g", pt)
	}
	if pt := cb.PhaseTime(100, 1); pt != 100 {
		t.Errorf("comm-bound serial time = %g, want 100", pt)
	}
	// A latency-dominated phase can lose from parallelism: that is the
	// behavior the model exists to exhibit.
	lat, err := New("comm-bound", Params{"alpha": 50, "beta": 0})
	if err != nil {
		t.Fatal(err)
	}
	if lat.PhaseTime(10, 2) <= lat.PhaseTime(10, 1) {
		t.Error("latency-bound phase should slow down on 2 nodes")
	}
}

// TestCommFactorMatchesLegacyFormula: the comm-factor family must
// reproduce the historical Phase formula expression-for-expression —
// this is what makes attaching the registered lu/synthetic/stencil
// models bit-invisible to golden results.
func TestCommFactorMatchesLegacyFormula(t *testing.T) {
	for _, c := range []float64{0, 0.02, 0.08 + 0.25/3, 0.5} {
		m := Comm("synthetic", c)
		for p := 1; p <= 33; p++ {
			eff := 1 / (1 + c*float64(p-1))
			if got := m.Efficiency(7, p); got != eff {
				t.Fatalf("c=%g p=%d: Efficiency = %g, want %g (bitwise)", c, p, got, eff)
			}
			if got, want := m.Rate(7, p), float64(p)*eff; got != want {
				t.Fatalf("c=%g p=%d: Rate = %g, want %g (bitwise)", c, p, got, want)
			}
		}
	}
}

// TestRegistryCommFamilies: the registered lu/synthetic/stencil
// factories must produce the same curves as the direct constructors the
// scenario layer uses.
func TestRegistryCommFamilies(t *testing.T) {
	lu, err := New("lu", Params{"blocks": 8, "k": 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := LUPhase(8, 3); lu.(CommFactor).C != want.C {
		t.Errorf("registry lu C = %g, want %g", lu.(CommFactor).C, want.C)
	}
	st, err := New("stencil", Params{"grid_n": 648})
	if err != nil {
		t.Fatal(err)
	}
	if want := StencilComm(648, 0); st.(CommFactor).C != want {
		t.Errorf("registry stencil C = %g, want %g", st.(CommFactor).C, want)
	}
	syn, err := New("synthetic", Params{"comm": 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if syn.(CommFactor).C != 0.04 {
		t.Errorf("registry synthetic C = %g", syn.(CommFactor).C)
	}
}

// TestReconfigurerHooks: every built-in model prices migration and
// checkpoint loss through the shared Costs parameters, defaulting to
// free.
func TestReconfigurerHooks(t *testing.T) {
	for _, name := range Names() {
		free, err := New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		rc, ok := free.(Reconfigurer)
		if !ok {
			t.Fatalf("%s does not implement Reconfigurer", name)
		}
		if rc.MigrationS(4, 8) != 0 || rc.CheckpointLossS() != 0 {
			t.Errorf("%s: default costs not free", name)
		}
		priced, err := New(name, Params{"migrate_s": 1.5, "ckpt_s": 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rc = priced.(Reconfigurer)
		if rc.MigrationS(4, 8) != 1.5 || rc.CheckpointLossS() != 3 {
			t.Errorf("%s: costs not plumbed: migrate=%g ckpt=%g",
				name, rc.MigrationS(4, 8), rc.CheckpointLossS())
		}
	}
}

// TestFactoryRejectsBadParams: misspelled or out-of-range parameters
// must fail at construction.
func TestFactoryRejectsBadParams(t *testing.T) {
	bad := []struct {
		name string
		p    Params
	}{
		{"amdahl", Params{"serial": 0.1}},
		{"amdahl", Params{"f": 1.5}},
		{"amdahl", Params{"f": -0.1}},
		{"downey", Params{"A": 0.5}},
		{"downey", Params{"sigma": -1}},
		{"comm-bound", Params{"alpha": -1}},
		{"roofline", Params{"sat": 0}},
		{"fixed", Params{"nodes": 4}},
		{"lu", Params{"blocks": 4, "k": 4}},
		{"synthetic", Params{"comm": -0.1}},
		{"stencil", Params{"grid_n": 0}},
		{"fixed", Params{"migrate_s": -1}},
		{"fixed", Params{"ckpt_s": -1}},
	}
	for _, tc := range bad {
		if _, err := New(tc.name, tc.p); err == nil {
			t.Errorf("%s%v: bad params accepted", tc.name, tc.p)
		}
	}
}
