package availability

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpsim/internal/rng"
	"dpsim/internal/trace"
)

func gen(t *testing.T, spec Spec, nodes int, seed uint64) []Change {
	t.Helper()
	ch, err := spec.Generate(nodes, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// checkInvariants: sorted, in range, successive capacities differ, notice
// only on drops.
func checkInvariants(t *testing.T, ch []Change, nodes, minCap int) {
	t.Helper()
	last := nodes
	prevAt := -1.0
	for i, c := range ch {
		if c.At < prevAt {
			t.Fatalf("change %d at %g before %g", i, c.At, prevAt)
		}
		prevAt = c.At
		if c.Capacity < minCap || c.Capacity > nodes {
			t.Fatalf("change %d capacity %d outside [%d, %d]", i, c.Capacity, minCap, nodes)
		}
		if c.Capacity == last {
			t.Fatalf("change %d is a no-op at capacity %d", i, c.Capacity)
		}
		if c.NoticeS > 0 && c.Capacity > last {
			t.Fatalf("change %d: notice %g on a capacity rise", i, c.NoticeS)
		}
		last = c.Capacity
	}
}

func TestMaintenanceWindows(t *testing.T) {
	spec := Spec{Process: "maintenance", StartS: 100, PeriodS: 1000, DurationS: 200, NodesDown: 4, NoticeS: 50, HorizonS: 3500}
	ch := gen(t, spec, 16, 1)
	checkInvariants(t, ch, 16, 1)
	// Windows at 100, 1100, 2100, 3100: a down and an up each.
	if len(ch) != 8 {
		t.Fatalf("got %d changes, want 8: %+v", len(ch), ch)
	}
	for i := 0; i < len(ch); i += 2 {
		down, up := ch[i], ch[i+1]
		if down.Capacity != 12 || up.Capacity != 16 {
			t.Fatalf("window %d capacities %d/%d, want 12/16", i/2, down.Capacity, up.Capacity)
		}
		if up.At-down.At != 200 {
			t.Fatalf("window %d duration %g, want 200", i/2, up.At-down.At)
		}
		if down.NoticeS != 50 || up.NoticeS != 0 {
			t.Fatalf("window %d notices %g/%g, want 50/0", i/2, down.NoticeS, up.NoticeS)
		}
	}
}

// TestMaintenanceClippedAtHorizon: a window straddling the horizon takes
// nodes down but never restores them — no change is emitted at or past
// HorizonS, matching every other process.
func TestMaintenanceClippedAtHorizon(t *testing.T) {
	spec := Spec{Process: "maintenance", StartS: 3400, PeriodS: 1000, DurationS: 200, NodesDown: 4, HorizonS: 3500}
	ch := gen(t, spec, 16, 1)
	if len(ch) != 1 {
		t.Fatalf("got %d changes, want 1 (no restore past the horizon): %+v", len(ch), ch)
	}
	if ch[0].At != 3400 || ch[0].Capacity != 12 {
		t.Fatalf("change = %+v, want down to 12 at 3400", ch[0])
	}
}

func TestMaintenanceIgnoresRNG(t *testing.T) {
	spec := Spec{Process: "maintenance", PeriodS: 500, DurationS: 100, NodesDown: 2, HorizonS: 2000}
	a := gen(t, spec, 8, 1)
	b := gen(t, spec, 8, 999)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("deterministic process depends on the seed")
	}
}

func TestFailuresDeterminism(t *testing.T) {
	spec := Spec{Process: "failures", MTTFS: 2000, MTTRS: 300, HorizonS: 20000}
	a := gen(t, spec, 24, 7)
	b := gen(t, spec, 24, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different timelines")
	}
	c := gen(t, spec, 24, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
	if len(a) == 0 {
		t.Fatal("no failures generated over 10 MTTFs on 24 nodes")
	}
	checkInvariants(t, a, 24, 1)
}

func TestFailuresMinCapacityFloor(t *testing.T) {
	// Brutal failure rate: raw capacity would hit zero, the floor holds.
	spec := Spec{Process: "failures", MTTFS: 50, MTTRS: 5000, MinCapacity: 3, HorizonS: 30000}
	ch := gen(t, spec, 8, 3)
	checkInvariants(t, ch, 8, 3)
	hitFloor := false
	for _, c := range ch {
		if c.Capacity == 3 {
			hitFloor = true
		}
	}
	if !hitFloor {
		t.Fatal("capacity never reached the floor under a 100:1 down ratio")
	}
}

func TestWeibullFailures(t *testing.T) {
	// The mean-parameterized Weibull sampler must honor its mean...
	src := rng.New(11)
	var sum float64
	n := 4000
	for i := 0; i < n; i++ {
		sum += src.Weibull(1000, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-1000) > 50 {
		t.Fatalf("mean Weibull deviate %g, want ≈1000", mean)
	}
	// ...and the weibull failure law must yield a valid timeline distinct
	// from the exponential one under the same seed.
	wb := Spec{Process: "failures", MTTFS: 2000, MTTRS: 300, Dist: "weibull", Shape: 0.7, HorizonS: 20000}
	ex := wb
	ex.Dist = "exp"
	a := gen(t, wb, 24, 7)
	b := gen(t, ex, 24, 7)
	checkInvariants(t, a, 24, 1)
	if len(a) == 0 {
		t.Fatal("no weibull failures over 10 MTTFs on 24 nodes")
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("weibull and exponential laws produced identical timelines")
	}
}

func TestSpotReclaimAndRestore(t *testing.T) {
	spec := Spec{Process: "spot", ReclaimMeanS: 500, ReclaimNodes: 3, NoticeS: 120, RestoreMeanS: 200, HorizonS: 10000}
	ch := gen(t, spec, 32, 5)
	checkInvariants(t, ch, 32, 1)
	if len(ch) == 0 {
		t.Fatal("no reclaims over 20 mean intervals")
	}
	sawDrop, sawRise := false, false
	last := 32
	for _, c := range ch {
		if c.Capacity < last {
			sawDrop = true
			if c.NoticeS != 120 {
				t.Fatalf("drop at %g has notice %g, want 120", c.At, c.NoticeS)
			}
		} else {
			sawRise = true
		}
		last = c.Capacity
	}
	if !sawDrop || !sawRise {
		t.Fatalf("expected both reclaims and restores, got drop=%v rise=%v", sawDrop, sawRise)
	}
}

func TestChurnStationaryStart(t *testing.T) {
	// Two-thirds offline in steady state: the t=0 capacity should reflect
	// the stationary law, not an all-up start.
	spec := Spec{Process: "churn", MeanOnS: 100, MeanOffS: 200, HorizonS: 5000}
	ch := gen(t, spec, 300, 13)
	checkInvariants(t, ch, 300, 1)
	if len(ch) == 0 || ch[0].At != 0 {
		t.Fatalf("churn should open with a t=0 step, got %+v", ch[:min(3, len(ch))])
	}
	start := ch[0].Capacity
	if start < 60 || start > 140 {
		t.Fatalf("t=0 capacity %d far from stationary ≈100 of 300", start)
	}
	mc := MeanCapacity(ch, 300, 5000)
	if mc < 70 || mc > 130 {
		t.Fatalf("mean capacity %g far from stationary ≈100", mc)
	}
}

func TestTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cap.csv")
	var sb strings.Builder
	if err := trace.WriteCapacity(&sb, []trace.CapacityPoint{
		{T: 0, Capacity: 8}, {T: 50, Capacity: 4}, {T: 80, Capacity: 4}, {T: 120, Capacity: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Process: "trace", Path: "cap.csv", Dir: dir, NoticeS: 30}
	ch := gen(t, spec, 8, 1)
	// 8→8 at t=0 and 4→4 at t=80 are no-ops; capacity 10 clamps to 8.
	want := []Change{{At: 50, Capacity: 4, NoticeS: 30}, {At: 120, Capacity: 8}}
	if !reflect.DeepEqual(ch, want) {
		t.Fatalf("got %+v, want %+v", ch, want)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{Process: "volcano"},
		{Process: "maintenance", PeriodS: 10, DurationS: 20, NodesDown: 1},
		{Process: "maintenance", PeriodS: 10, DurationS: 5},
		{Process: "failures", MTTFS: 10},
		{Process: "failures", MTTFS: 10, MTTRS: 5, Dist: "gamma"},
		{Process: "spot"},
		{Process: "churn", MeanOnS: 10},
		{Process: "trace"},
		{Process: "failures", MTTFS: 10, MTTRS: 5, HorizonS: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, s)
		}
	}
	empty := Spec{}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty process rejected: %v", err)
	}
	if ch := gen(t, Spec{}, 8, 1); ch != nil {
		t.Fatalf("empty process generated changes: %+v", ch)
	}
}

func TestLabels(t *testing.T) {
	cases := map[string]Spec{
		"none":             {},
		"maintenance":      {Process: "maintenance"},
		"failures":         {Process: "failures"},
		"failures:weibull": {Process: "failures", Dist: "weibull"},
		"spot":             {Process: "spot"},
		"trace:cap.csv":    {Process: "trace", Path: "some/dir/cap.csv"},
	}
	for want, spec := range cases {
		if got := spec.Label(); got != want {
			t.Fatalf("label %q, want %q", got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
