// Package availability models time-varying compute-node capacity: the
// cluster's node pool is no longer a constant but a timeline driven by
// maintenance windows, stochastic failure/repair processes, spot-style
// preemption with reclaim notice, desktop-grid churn, or the replay of a
// recorded availability trace.
//
// The package is a pure generator: a Spec (the declarative, JSON-embedded
// form used by scenario files) expands into a sorted []Change — absolute
// capacity steps with optional advance notice — consuming randomness only
// from a forked internal/rng stream, so a timeline is a deterministic
// function of (spec, nodes, seed) regardless of where or when it is
// generated. The cluster simulator consumes the changes through its event
// queue; this package knows nothing about jobs or schedulers.
//
// Supported processes:
//
//   - maintenance — deterministic periodic windows taking a fixed number
//     of nodes down (HPC drain/patch cycles).
//   - failures — per-node alternating renewal: exponential or Weibull
//     time-to-failure, exponential repair (classic reliability model;
//     Weibull shape < 1 gives infant mortality, > 1 wear-out).
//   - spot — Poisson reclaim events with configurable notice, each taking
//     a block of nodes; reclaimed capacity returns after an exponential
//     replacement delay (cloud spot/preemptible instances).
//   - churn — per-node stationary on/off alternation with exponential
//     sojourns, nodes starting online with the stationary probability
//     (desktop-grid volunteers).
//   - trace — replay of a t_s,capacity CSV (trace.ReadCapacity format)
//     recorded from a real system.
package availability

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dpsim/internal/rng"
	"dpsim/internal/trace"
)

// Change is one step of the capacity timeline: from instant At on, the
// cluster has Capacity usable nodes. Changes are sorted by At with
// strictly changing capacities.
type Change struct {
	// At is the instant the new capacity takes effect, in seconds.
	At float64
	// Capacity is the absolute usable-node count from At on.
	Capacity int
	// NoticeS is the advance warning announced before a capacity drop
	// (reclaim notice); 0 means the drop is abrupt. Ignored for rises.
	NoticeS float64
}

// DefaultHorizonS bounds stochastic event generation when a spec does not
// set its own horizon: one simulated day.
const DefaultHorizonS = 86400

// maxChanges guards against runaway parameterizations (sub-second MTTF on
// a large cluster over a long horizon) producing timelines that dwarf the
// workload they perturb.
const maxChanges = 1 << 20

// Spec declares one availability process. It is the JSON schema embedded
// in scenario files; exactly the fields of the selected Process are used.
type Spec struct {
	// Process is "maintenance", "failures", "spot", "churn" or "trace";
	// "none" (or empty) is the fixed-pool baseline generating no changes.
	Process string `json:"process"`
	// HorizonS bounds event generation (default DefaultHorizonS); the
	// capacity holds at its last value afterwards.
	HorizonS float64 `json:"horizon_s,omitempty"`
	// MinCapacity floors the usable capacity (default 1): the pool never
	// drops below this many nodes no matter what the process generates.
	MinCapacity int `json:"min_capacity,omitempty"`
	// NoticeS is the advance warning attached to capacity drops
	// (maintenance shutdowns, spot reclaims). 0 means abrupt: running
	// work on reclaimed nodes is lost per the reconfiguration-cost model.
	NoticeS float64 `json:"notice_s,omitempty"`

	// maintenance: windows of DurationS every PeriodS starting at StartS,
	// each taking NodesDown nodes offline.
	StartS    float64 `json:"start_s,omitempty"`
	PeriodS   float64 `json:"period_s,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	NodesDown int     `json:"nodes_down,omitempty"`

	// failures: per-node mean time to failure and repair; Dist selects
	// the TTF law, "exp" (default) or "weibull" with the given Shape.
	MTTFS float64 `json:"mttf_s,omitempty"`
	MTTRS float64 `json:"mttr_s,omitempty"`
	Dist  string  `json:"dist,omitempty"`
	Shape float64 `json:"shape,omitempty"`

	// spot: Poisson reclaims every ReclaimMeanS on average, each taking
	// ReclaimNodes nodes (default 1); capacity returns after an
	// exponential delay of mean RestoreMeanS (0: it never returns).
	ReclaimMeanS float64 `json:"reclaim_mean_s,omitempty"`
	ReclaimNodes int     `json:"reclaim_nodes,omitempty"`
	RestoreMeanS float64 `json:"restore_mean_s,omitempty"`

	// churn: per-node exponential online/offline sojourn means; nodes
	// start online with probability MeanOnS/(MeanOnS+MeanOffS).
	MeanOnS  float64 `json:"mean_on_s,omitempty"`
	MeanOffS float64 `json:"mean_off_s,omitempty"`

	// trace: path to a t_s,capacity CSV, resolved against Dir when
	// relative.
	Path string `json:"path,omitempty"`

	// Dir resolves a relative trace Path (set by the scenario loader to
	// the scenario file's directory); not part of the JSON schema.
	Dir string `json:"-"`
}

// Label names the process for reports and CSV columns.
func (s Spec) Label() string {
	switch s.Process {
	case "", "none":
		return "none"
	case "failures":
		if s.Dist == "weibull" {
			return "failures:weibull"
		}
		return "failures"
	case "trace":
		if s.Path != "" {
			return "trace:" + filepath.Base(s.Path)
		}
	}
	return s.Process
}

// Validate checks the spec and fills defaults. An empty Process is valid
// and generates no changes (the fixed-pool degenerate case).
func (s *Spec) Validate() error {
	if s.HorizonS < 0 {
		return fmt.Errorf("negative horizon_s")
	}
	if s.HorizonS == 0 {
		s.HorizonS = DefaultHorizonS
	}
	if s.MinCapacity < 0 {
		return fmt.Errorf("negative min_capacity")
	}
	if s.MinCapacity == 0 {
		s.MinCapacity = 1
	}
	if s.NoticeS < 0 {
		return fmt.Errorf("negative notice_s")
	}
	switch s.Process {
	case "", "none":
		// No availability dynamics.
	case "maintenance":
		if s.PeriodS <= 0 || s.DurationS <= 0 {
			return fmt.Errorf("maintenance needs period_s and duration_s > 0")
		}
		if s.DurationS >= s.PeriodS {
			return fmt.Errorf("maintenance duration_s %g must be < period_s %g", s.DurationS, s.PeriodS)
		}
		if s.NodesDown <= 0 {
			return fmt.Errorf("maintenance needs nodes_down > 0")
		}
		if s.StartS < 0 {
			return fmt.Errorf("negative start_s")
		}
	case "failures":
		if s.MTTFS <= 0 || s.MTTRS <= 0 {
			return fmt.Errorf("failures need mttf_s and mttr_s > 0")
		}
		switch s.Dist {
		case "", "exp":
		case "weibull":
			if s.Shape == 0 {
				s.Shape = 1.5
			}
			if s.Shape <= 0 {
				return fmt.Errorf("weibull shape must be > 0")
			}
		default:
			return fmt.Errorf("unknown failure dist %q (want exp or weibull)", s.Dist)
		}
	case "spot":
		if s.ReclaimMeanS <= 0 {
			return fmt.Errorf("spot needs reclaim_mean_s > 0")
		}
		if s.ReclaimNodes < 0 || s.RestoreMeanS < 0 {
			return fmt.Errorf("spot reclaim_nodes and restore_mean_s must be >= 0")
		}
		if s.ReclaimNodes == 0 {
			s.ReclaimNodes = 1
		}
	case "churn":
		if s.MeanOnS <= 0 || s.MeanOffS <= 0 {
			return fmt.Errorf("churn needs mean_on_s and mean_off_s > 0")
		}
	case "trace":
		if s.Path == "" {
			return fmt.Errorf("trace needs a path")
		}
	default:
		return fmt.Errorf("unknown availability process %q", s.Process)
	}
	return nil
}

// transition is an un-normalized raw event before folding: either a delta
// on the running node count or an absolute capacity step.
type transition struct {
	at     float64
	delta  int
	abs    int
	isAbs  bool
	notice float64
}

// Generate expands the spec into the sorted capacity timeline of a
// cluster with the given full pool size, consuming randomness only from
// src. Equal (spec, nodes, src state) produce identical timelines; the
// deterministic processes ignore src entirely. The returned capacities
// always lie in [MinCapacity, nodes] and successive entries differ.
func (s Spec) Generate(nodes int, src *rng.Source) ([]Change, error) {
	spec := s // validate on a copy so Generate is usable standalone
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("availability: %w", err)
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("availability: need nodes > 0")
	}
	var raw []transition
	var err error
	switch spec.Process {
	case "", "none":
		return nil, nil
	case "maintenance":
		raw = spec.maintenance()
	case "failures":
		raw, err = spec.perNode(nodes, src, false)
	case "churn":
		raw, err = spec.perNode(nodes, src, true)
	case "spot":
		raw, err = spec.spot(src)
	case "trace":
		raw, err = spec.traceReplay()
	}
	if err != nil {
		return nil, err
	}
	return fold(raw, nodes, spec.MinCapacity), nil
}

func (s Spec) maintenance() []transition {
	var out []transition
	for t := s.StartS; t < s.HorizonS && len(out) < maxChanges; t += s.PeriodS {
		out = append(out, transition{at: t, delta: -s.NodesDown, notice: s.NoticeS})
		// A window straddling the horizon never restores: like every
		// other process, nothing is emitted at or past HorizonS.
		if t+s.DurationS < s.HorizonS {
			out = append(out, transition{at: t + s.DurationS, delta: s.NodesDown})
		}
	}
	return out
}

// perNode generates an alternating up/down renewal process per node and
// merges the transitions. Failures start every node up and draw TTF from
// the configured law; churn starts nodes in their stationary state and is
// purely exponential. Each node forks its own stream so a node's timeline
// is independent of the cluster size ordering.
func (s Spec) perNode(nodes int, src *rng.Source, churn bool) ([]transition, error) {
	upMean, downMean := s.MTTFS, s.MTTRS
	if churn {
		upMean, downMean = s.MeanOnS, s.MeanOffS
	}
	var out []transition
	for i := 0; i < nodes; i++ {
		r := src.Fork()
		up := true
		if churn {
			up = r.Float64() < upMean/(upMean+downMean)
			if !up {
				out = append(out, transition{at: 0, delta: -1})
			}
		}
		t := 0.0
		for t < s.HorizonS {
			var dwell float64
			if up {
				if !churn && s.Dist == "weibull" {
					dwell = r.Weibull(upMean, s.Shape)
				} else {
					dwell = r.Exp(upMean)
				}
			} else {
				dwell = r.Exp(downMean)
			}
			t += dwell
			if t >= s.HorizonS {
				break
			}
			d := 1
			if up {
				d = -1
			}
			out = append(out, transition{at: t, delta: d, notice: 0})
			up = !up
			if len(out) > maxChanges {
				return nil, fmt.Errorf("availability: %s process exceeds %d events before horizon %gs", s.Process, maxChanges, s.HorizonS)
			}
		}
	}
	return out, nil
}

func (s Spec) spot(src *rng.Source) ([]transition, error) {
	r := src.Fork()
	var out []transition
	t := 0.0
	for {
		t += r.Exp(s.ReclaimMeanS)
		if t >= s.HorizonS {
			return out, nil
		}
		out = append(out, transition{at: t, delta: -s.ReclaimNodes, notice: s.NoticeS})
		if s.RestoreMeanS > 0 {
			if back := t + r.Exp(s.RestoreMeanS); back < s.HorizonS {
				out = append(out, transition{at: back, delta: s.ReclaimNodes})
			}
		}
		if len(out) > maxChanges {
			return nil, fmt.Errorf("availability: spot process exceeds %d events before horizon %gs", maxChanges, s.HorizonS)
		}
	}
}

func (s Spec) traceReplay() ([]transition, error) {
	path := s.Path
	if !filepath.IsAbs(path) && s.Dir != "" {
		path = filepath.Join(s.Dir, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("availability: %w", err)
	}
	defer f.Close()
	points, err := trace.ReadCapacity(f)
	if err != nil {
		return nil, err
	}
	out := make([]transition, len(points))
	for i, p := range points {
		out[i] = transition{at: p.T, abs: p.Capacity, isAbs: true, notice: s.NoticeS}
	}
	return out, nil
}

// fold sorts raw transitions, accumulates them into an absolute capacity
// level, clamps to [minCap, nodes], coalesces same-instant events, and
// drops steps that do not change the clamped capacity.
func fold(raw []transition, nodes, minCap int) []Change {
	if minCap > nodes {
		minCap = nodes
	}
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].at < raw[j].at })
	clamp := func(v int) int {
		if v < minCap {
			return minCap
		}
		if v > nodes {
			return nodes
		}
		return v
	}
	var out []Change
	level := nodes
	last := nodes
	for i := 0; i < len(raw); {
		at := raw[i].at
		notice := 0.0
		for ; i < len(raw) && raw[i].at == at; i++ {
			if raw[i].isAbs {
				level = raw[i].abs
			} else {
				level += raw[i].delta
			}
			if raw[i].notice > notice {
				notice = raw[i].notice
			}
		}
		c := clamp(level)
		if c == last {
			continue
		}
		if c > last {
			notice = 0 // notice only matters for drops
		}
		out = append(out, Change{At: at, Capacity: c, NoticeS: notice})
		last = c
	}
	return out
}

// MeanCapacity integrates the timeline's capacity over [0, horizon] and
// returns the time-average, for reporting and sanity checks. The full
// pool size is the level before the first change.
func MeanCapacity(changes []Change, nodes int, horizon float64) float64 {
	if horizon <= 0 {
		return float64(nodes)
	}
	integral := 0.0
	level := nodes
	prev := 0.0
	for _, c := range changes {
		if c.At >= horizon {
			break
		}
		integral += float64(level) * (c.At - prev)
		level = c.Capacity
		prev = c.At
	}
	integral += float64(level) * (horizon - prev)
	return integral / horizon
}
