package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: dpsim/internal/cluster
BenchmarkClusterStep-8   	 1000000	      1200 ns/op	       0 B/op	       0 allocs/op
BenchmarkClusterStep-8   	 1000000	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerInvokeProbed-8   	  500000	      2100 ns/op	      64 B/op	       1 allocs/op
`

func run(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = realMain(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

func writeBaseline(t *testing.T, from string) string {
	t.Helper()
	code, out, stderr := run(t, nil, from)
	if code != 0 {
		t.Fatalf("baseline generation failed (%d): %s", code, stderr)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaselineSameRunPasses(t *testing.T) {
	base := writeBaseline(t, benchText)
	code, _, stderr := run(t, []string{"-baseline", base}, benchText)
	if code != 0 {
		t.Fatalf("identical run should pass, got exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "2 benchmark(s) within allocs/op baseline") {
		t.Errorf("expected pass summary naming 2 benchmarks, got: %s", stderr)
	}
}

func TestBaselineRegressionFails(t *testing.T) {
	base := writeBaseline(t, benchText)
	regressed := strings.ReplaceAll(benchText,
		"0 B/op	       0 allocs/op", "32 B/op	       2 allocs/op")
	code, _, stderr := run(t, []string{"-baseline", base}, regressed)
	if code != 1 {
		t.Fatalf("regressed run should exit 1, got %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkClusterStep-8: 2 allocs/op > baseline 0") {
		t.Errorf("regression message should name the benchmark and values, got: %s", stderr)
	}
}

func TestBaselineUsesMinAcrossRuns(t *testing.T) {
	base := writeBaseline(t, benchText)
	// One noisy run above baseline but the min still matches: must pass.
	noisy := benchText + "BenchmarkClusterStep-8   	 1000000	      1300 ns/op	      16 B/op	       3 allocs/op\n"
	code, _, stderr := run(t, []string{"-baseline", base}, noisy)
	if code != 0 {
		t.Fatalf("min-across-runs should absorb a noisy run, got exit %d: %s", code, stderr)
	}
}

func TestBaselineIgnoresNewBenchmarks(t *testing.T) {
	base := writeBaseline(t, benchText)
	extra := benchText + "BenchmarkBrandNew-8   	 1000	      9000 ns/op	     512 B/op	       9 allocs/op\n"
	code, _, stderr := run(t, []string{"-baseline", base}, extra)
	if code != 0 {
		t.Fatalf("benchmarks absent from baseline must not gate, got exit %d: %s", code, stderr)
	}
}

func TestBaselineMissingFileFails(t *testing.T) {
	code, _, stderr := run(t, []string{"-baseline", filepath.Join(t.TempDir(), "nope.json")}, benchText)
	if code != 1 {
		t.Fatalf("missing baseline file should exit 1, got %d: %s", code, stderr)
	}
}
