package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: dpsim/internal/cluster
BenchmarkClusterStep-8   	 1000000	      1200 ns/op	       0 B/op	       0 allocs/op
BenchmarkClusterStep-8   	 1000000	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerInvokeProbed-8   	  500000	      2100 ns/op	      64 B/op	       1 allocs/op
`

func run(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = realMain(args, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

func writeBaseline(t *testing.T, from string) string {
	t.Helper()
	code, out, stderr := run(t, nil, from)
	if code != 0 {
		t.Fatalf("baseline generation failed (%d): %s", code, stderr)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaselineSameRunPasses(t *testing.T) {
	base := writeBaseline(t, benchText)
	code, _, stderr := run(t, []string{"-baseline", base}, benchText)
	if code != 0 {
		t.Fatalf("identical run should pass, got exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "2 benchmark(s) within allocs/op baseline") {
		t.Errorf("expected pass summary naming 2 benchmarks, got: %s", stderr)
	}
}

func TestBaselineRegressionFails(t *testing.T) {
	base := writeBaseline(t, benchText)
	regressed := strings.ReplaceAll(benchText,
		"0 B/op	       0 allocs/op", "32 B/op	       2 allocs/op")
	code, _, stderr := run(t, []string{"-baseline", base}, regressed)
	if code != 1 {
		t.Fatalf("regressed run should exit 1, got %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkClusterStep-8: 2 allocs/op > baseline 0") {
		t.Errorf("regression message should name the benchmark and values, got: %s", stderr)
	}
}

func TestBaselineUsesMinAcrossRuns(t *testing.T) {
	base := writeBaseline(t, benchText)
	// One noisy run above baseline but the min still matches: must pass.
	noisy := benchText + "BenchmarkClusterStep-8   	 1000000	      1300 ns/op	      16 B/op	       3 allocs/op\n"
	code, _, stderr := run(t, []string{"-baseline", base}, noisy)
	if code != 0 {
		t.Fatalf("min-across-runs should absorb a noisy run, got exit %d: %s", code, stderr)
	}
}

func TestBaselineIgnoresNewBenchmarks(t *testing.T) {
	base := writeBaseline(t, benchText)
	extra := benchText + "BenchmarkBrandNew-8   	 1000	      9000 ns/op	     512 B/op	       9 allocs/op\n"
	code, _, stderr := run(t, []string{"-baseline", base}, extra)
	if code != 0 {
		t.Fatalf("benchmarks absent from baseline must not gate, got exit %d: %s", code, stderr)
	}
}

func TestBaselineMissingFileFails(t *testing.T) {
	code, _, stderr := run(t, []string{"-baseline", filepath.Join(t.TempDir(), "nope.json")}, benchText)
	if code != 1 {
		t.Fatalf("missing baseline file should exit 1, got %d: %s", code, stderr)
	}
}

func TestTimeToleranceGate(t *testing.T) {
	base := writeBaseline(t, benchText)
	// Baseline min ns/op for ClusterStep is 1100. 20% slower than that is
	// 1320: a 1300 run passes at tol 0.2 but fails at tol 0.1.
	slower := strings.ReplaceAll(benchText, "1200 ns/op", "1300 ns/op")
	slower = strings.ReplaceAll(slower, "1100 ns/op", "1300 ns/op")
	code, _, stderr := run(t, []string{"-baseline", base, "-time-tolerance", "0.2"}, slower)
	if code != 0 {
		t.Fatalf("within tolerance should pass, got exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "within 0.2 ns/op tolerance") {
		t.Errorf("expected ns/op pass summary, got: %s", stderr)
	}
	code, _, stderr = run(t, []string{"-baseline", base, "-time-tolerance", "0.1"}, slower)
	if code != 1 {
		t.Fatalf("outside tolerance should exit 1, got %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "ns/op regression: BenchmarkClusterStep-8") {
		t.Errorf("regression message should name the benchmark, got: %s", stderr)
	}
	// Default (0) never gates on time, no matter how slow.
	crawl := strings.ReplaceAll(benchText, "1200 ns/op", "999999 ns/op")
	crawl = strings.ReplaceAll(crawl, "1100 ns/op", "999999 ns/op")
	if code, _, stderr := run(t, []string{"-baseline", base}, crawl); code != 0 {
		t.Fatalf("time gate must be opt-in, got exit %d: %s", code, stderr)
	}
	if code, _, _ := run(t, []string{"-time-tolerance", "-1"}, benchText); code != 2 {
		t.Error("negative tolerance should be a usage error")
	}
}

func TestTrendTable(t *testing.T) {
	dir := t.TempDir()
	old := writeTrendReport(t, dir, "BENCH_PR4.json", benchText)
	newer := writeTrendReport(t, dir, "BENCH_PR7.json", strings.ReplaceAll(
		benchText, "1100 ns/op", "900 ns/op")+
		"BenchmarkBrandNew-8   	 1000	      9000 ns/op	     512 B/op	       9 allocs/op\n")
	code, out, stderr := run(t, []string{"-trend", old, newer}, "")
	if code != 0 {
		t.Fatalf("trend failed (%d): %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("expected header + 3 benchmarks x 2 metrics = 7 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "BENCH_PR4") || !strings.Contains(lines[0], "BENCH_PR7") {
		t.Errorf("header should carry report labels: %q", lines[0])
	}
	var clusterNs, brandNew string
	for _, l := range lines {
		if strings.HasPrefix(l, "BenchmarkClusterStep-8") && strings.Contains(l, "ns/op") {
			clusterNs = l
		}
		if strings.HasPrefix(l, "BenchmarkBrandNew-8") && strings.Contains(l, "ns/op") {
			brandNew = l
		}
	}
	for _, want := range []string{"1100", "900"} {
		if !strings.Contains(clusterNs, want) {
			t.Errorf("ClusterStep ns/op row missing %s: %q", want, clusterNs)
		}
	}
	if !strings.Contains(brandNew, "-") {
		t.Errorf("benchmark absent from a report should show -: %q", brandNew)
	}

	if code, _, _ := run(t, []string{"-trend"}, ""); code != 2 {
		t.Error("-trend with no reports should be a usage error")
	}
	if code, _, _ := run(t, []string{"-trend", "-baseline", old, newer}, ""); code != 2 {
		t.Error("-trend with -baseline should be a usage error")
	}
	if code, _, _ := run(t, []string{"-trend", filepath.Join(dir, "nope.json")}, ""); code != 1 {
		t.Error("missing trend report should exit 1")
	}
}

func writeTrendReport(t *testing.T, dir, name, from string) string {
	t.Helper()
	code, out, stderr := run(t, nil, from)
	if code != 0 {
		t.Fatalf("report generation failed (%d): %s", code, stderr)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
