// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document suitable for archiving as a CI artifact —
// the repository's performance trajectory. Repeated runs of the same
// benchmark (-count=N) are aggregated into min/mean/max so the artifact
// stays one row per benchmark.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 ./internal/cluster | benchjson > BENCH.json
//	... | benchjson -baseline BENCH_PR6.json > BENCH.json   # regression gate
//
// Recognized per-line fields are the standard benchmark metrics
// (ns/op, B/op, allocs/op) plus any custom b.ReportMetric units, which
// land in the metrics map verbatim.
//
// With -baseline, the parsed run is additionally diffed against a pinned
// report produced by an earlier benchjson run: for every benchmark
// present in the baseline, the current min allocs/op across runs must
// not exceed the baseline's min. Allocation counts are deterministic
// (unlike ns/op), so any increase is a real steady-state regression and
// the command exits 1 naming the offending benchmarks. Benchmarks absent
// from the baseline are informational only.
//
// -time-tolerance F additionally gates wall time: the current min ns/op
// across runs must not exceed the baseline's min by more than the
// fraction F (0.5 = 50% slower fails). ns/op is machine- and
// load-dependent — unlike the allocs gate this is opt-in, meant for
// dedicated benchmark hosts, and the min across -count runs is compared
// so scheduler noise in individual runs is absorbed. 0 (the default)
// disables the gate.
//
// -trend switches to trajectory mode: instead of reading stdin, the
// positional arguments name committed benchjson reports in history
// order (e.g. BENCH_PR4.json BENCH_PR6.json BENCH_PR7.json) and the
// output is a text table, one row per benchmark × metric, one column
// per report — the repository's performance trajectory at a glance.
// Metrics covered: ns/op and allocs/op; a "-" marks a benchmark absent
// from that report.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// sample is one parsed benchmark line.
type sample struct {
	metrics map[string]float64
}

// Result is one benchmark's aggregated JSON row.
type Result struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// Metrics maps unit → {min, mean, max} over the runs.
	Metrics map[string]Stat `json:"metrics"`
}

// Stat summarizes one metric across repeated runs.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Report is the artifact envelope.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     []string `json:"packages,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "",
		"pinned benchjson report; exit 1 if any baseline benchmark's min allocs/op regresses")
	timeTol := fs.Float64("time-tolerance", 0,
		"with -baseline, also gate min ns/op: exit 1 if it exceeds the baseline's min\n"+
			"by more than this fraction (0.5 = 50% slower fails; 0 disables the gate)")
	trend := fs.Bool("trend", false,
		"trajectory mode: merge the benchjson reports named as arguments (in history\n"+
			"order) into a per-benchmark trend table on stdout; stdin is not read")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *timeTol < 0 {
		fmt.Fprintln(stderr, "benchjson: -time-tolerance must be >= 0")
		return 2
	}
	if *trend {
		if *baseline != "" || fs.NArg() == 0 {
			fmt.Fprintln(stderr, "benchjson: -trend takes report files as arguments and no -baseline")
			return 2
		}
		if err := writeTrend(stdout, fs.Args()); err != nil {
			fmt.Fprintf(stderr, "benchjson: trend: %v\n", err)
			return 1
		}
		return 0
	}
	rep, err := parse(bufio.NewScanner(stdin))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: baseline: %v\n", err)
			return 1
		}
		regressions, checked := diffAllocs(base, rep)
		for _, r := range regressions {
			fmt.Fprintf(stderr, "benchjson: allocs/op regression: %s\n", r)
		}
		timeRegressions, timeChecked := 0, 0
		if *timeTol > 0 {
			tr, tc := diffTime(base, rep, *timeTol)
			for _, r := range tr {
				fmt.Fprintf(stderr, "benchjson: ns/op regression: %s\n", r)
			}
			timeRegressions, timeChecked = len(tr), tc
		}
		if len(regressions)+timeRegressions > 0 {
			return 1
		}
		fmt.Fprintf(stderr, "benchjson: %d benchmark(s) within allocs/op baseline %s\n",
			checked, *baseline)
		if *timeTol > 0 {
			fmt.Fprintf(stderr, "benchjson: %d benchmark(s) within %g ns/op tolerance\n",
				timeChecked, *timeTol)
		}
	}
	return 0
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// diffAllocs compares min allocs/op per benchmark against the baseline.
// Only benchmarks present in the baseline gate the run; the min across
// repeated runs absorbs one-time warmup allocations so the comparison
// reflects steady state.
func diffAllocs(base, cur *Report) (regressions []string, checked int) {
	current := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		current[r.Name] = r
	}
	for _, b := range base.Results {
		want, ok := b.Metrics["allocs/op"]
		if !ok {
			continue
		}
		c, ok := current[b.Name]
		if !ok {
			continue
		}
		got, ok := c.Metrics["allocs/op"]
		if !ok {
			continue
		}
		checked++
		if got.Min > want.Min {
			regressions = append(regressions,
				fmt.Sprintf("%s: %g allocs/op > baseline %g", b.Name, got.Min, want.Min))
		}
	}
	return regressions, checked
}

// diffTime compares min ns/op per benchmark against the baseline with a
// fractional tolerance: the min across repeated runs is each side's best
// case, so the comparison is as noise-free as wall time gets.
func diffTime(base, cur *Report, tol float64) (regressions []string, checked int) {
	current := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		current[r.Name] = r
	}
	for _, b := range base.Results {
		want, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		c, ok := current[b.Name]
		if !ok {
			continue
		}
		got, ok := c.Metrics["ns/op"]
		if !ok {
			continue
		}
		checked++
		if limit := want.Min * (1 + tol); got.Min > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %g ns/op > baseline %g +%g%% = %g",
					b.Name, got.Min, want.Min, 100*tol, limit))
		}
	}
	return regressions, checked
}

// trendMetrics are the metrics the trajectory table tracks — the two the
// repository gates on.
var trendMetrics = []string{"ns/op", "allocs/op"}

// writeTrend renders the reports at paths (history order) as one table:
// a row per benchmark × metric, a column per report labelled by its file
// name. Benchmarks appear in first-seen order across the history.
func writeTrend(w io.Writer, paths []string) error {
	reports := make([]*Report, len(paths))
	labels := make([]string, len(paths))
	for i, path := range paths {
		rep, err := loadReport(path)
		if err != nil {
			return err
		}
		reports[i] = rep
		labels[i] = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	var order []string
	byName := make([]map[string]Result, len(reports))
	seen := make(map[string]bool)
	for i, rep := range reports {
		byName[i] = make(map[string]Result, len(rep.Results))
		for _, r := range rep.Results {
			byName[i][r.Name] = r
			if !seen[r.Name] {
				seen[r.Name] = true
				order = append(order, r.Name)
			}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tmetric")
	for _, l := range labels {
		fmt.Fprintf(tw, "\t%s", l)
	}
	fmt.Fprintln(tw)
	for _, name := range order {
		for _, metric := range trendMetrics {
			cells := make([]string, len(reports))
			any := false
			for i := range reports {
				cells[i] = "-"
				if r, ok := byName[i][name]; ok {
					if st, ok := r.Metrics[metric]; ok {
						cells[i] = strconv.FormatFloat(st.Min, 'g', -1, 64)
						any = true
					}
				}
			}
			if !any {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\n", name, metric, strings.Join(cells, "\t"))
		}
	}
	return tw.Flush()
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	samples := make(map[string][]sample)
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		// fields[1] is the iteration count; a failed parse means a
		// benchmark name line without results, not a data row.
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		s := sample{metrics: make(map[string]float64)}
		// The remainder alternates value/unit: "1234 ns/op 56 B/op ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			s.metrics[fields[i+1]] = v
		}
		name := fields[0]
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		runs := samples[name]
		res := Result{Name: name, Runs: len(runs), Metrics: make(map[string]Stat)}
		units := make(map[string][]float64)
		for _, s := range runs {
			for unit, v := range s.metrics {
				units[unit] = append(units[unit], v)
			}
		}
		unitNames := make([]string, 0, len(units))
		for u := range units {
			unitNames = append(unitNames, u)
		}
		sort.Strings(unitNames)
		for _, u := range unitNames {
			vs := units[u]
			st := Stat{Min: vs[0], Max: vs[0]}
			var sum float64
			for _, v := range vs {
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
				sum += v
			}
			st.Mean = sum / float64(len(vs))
			res.Metrics[u] = st
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
