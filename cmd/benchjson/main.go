// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document suitable for archiving as a CI artifact —
// the repository's performance trajectory. Repeated runs of the same
// benchmark (-count=N) are aggregated into min/mean/max so the artifact
// stays one row per benchmark.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 ./internal/cluster | benchjson > BENCH.json
//
// Recognized per-line fields are the standard benchmark metrics
// (ns/op, B/op, allocs/op) plus any custom b.ReportMetric units, which
// land in the metrics map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line.
type sample struct {
	metrics map[string]float64
}

// Result is one benchmark's aggregated JSON row.
type Result struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`
	// Metrics maps unit → {min, mean, max} over the runs.
	Metrics map[string]Stat `json:"metrics"`
}

// Stat summarizes one metric across repeated runs.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Report is the artifact envelope.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     []string `json:"packages,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	samples := make(map[string][]sample)
	var order []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		// fields[1] is the iteration count; a failed parse means a
		// benchmark name line without results, not a data row.
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		s := sample{metrics: make(map[string]float64)}
		// The remainder alternates value/unit: "1234 ns/op 56 B/op ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			s.metrics[fields[i+1]] = v
		}
		name := fields[0]
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		runs := samples[name]
		res := Result{Name: name, Runs: len(runs), Metrics: make(map[string]Stat)}
		units := make(map[string][]float64)
		for _, s := range runs {
			for unit, v := range s.metrics {
				units[unit] = append(units[unit], v)
			}
		}
		unitNames := make([]string, 0, len(units))
		for u := range units {
			unitNames = append(unitNames, u)
		}
		sort.Strings(unitNames)
		for _, u := range unitNames {
			vs := units[u]
			st := Stat{Min: vs[0], Max: vs[0]}
			var sum float64
			for _, v := range vs {
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
				sum += v
			}
			st.Mean = sum / float64(len(vs))
			res.Metrics[u] = st
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
