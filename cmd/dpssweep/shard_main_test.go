package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRealMainShardMerge drives the sharded workflow end to end through
// the CLI: two shard runs plus a merge export byte-identical CSV and
// JSON to a single-process run.
func TestRealMainShardMerge(t *testing.T) {
	dir := t.TempDir()
	singleCSV := filepath.Join(dir, "single.csv")
	singleJSON := filepath.Join(dir, "single.json")
	common := []string{"-scenario", scenarioPath(t), "-replications", "2", "-q"}
	var stdout, stderr bytes.Buffer
	if code := realMain(append(common, "-csv", singleCSV, "-json", singleJSON), &stdout, &stderr); code != 0 {
		t.Fatalf("single run exit %d: %s", code, stderr.String())
	}

	var shardPaths []string
	for i := 0; i < 2; i++ {
		p := filepath.Join(dir, fmt.Sprintf("s%d.json", i))
		stdout.Reset()
		stderr.Reset()
		args := append(common, "-shard", fmt.Sprintf("%d/2", i), "-shard-out", p)
		if code := realMain(args, &stdout, &stderr); code != 0 {
			t.Fatalf("shard %d exit %d: %s", i, code, stderr.String())
		}
		shardPaths = append(shardPaths, p)
	}

	mergedCSV := filepath.Join(dir, "merged.csv")
	mergedJSON := filepath.Join(dir, "merged.json")
	stdout.Reset()
	stderr.Reset()
	args := append(common, "-merge", strings.Join(shardPaths, ","),
		"-csv", mergedCSV, "-json", mergedJSON)
	if code := realMain(args, &stdout, &stderr); code != 0 {
		t.Fatalf("merge exit %d: %s", code, stderr.String())
	}

	if !bytes.Equal(mustRead(t, mergedCSV), mustRead(t, singleCSV)) {
		t.Error("merged CSV differs from the single-process run")
	}
	if !bytes.Equal(mustRead(t, mergedJSON), mustRead(t, singleJSON)) {
		t.Error("merged JSON differs from the single-process run")
	}
}

// TestRealMainCheckpointResume: a completed checkpointed run leaves a
// checkpoint file, and rerunning the same command resumes from it and
// reproduces the export bytes.
func TestRealMainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	firstCSV := filepath.Join(dir, "first.csv")
	secondCSV := filepath.Join(dir, "second.csv")
	common := []string{"-scenario", scenarioPath(t), "-replications", "2", "-q",
		"-checkpoint", ck, "-checkpoint-every", "4"}
	var stdout, stderr bytes.Buffer
	if code := realMain(append(common, "-csv", firstCSV), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := realMain(append(common, "-csv", secondCSV), &stdout, &stderr); code != 0 {
		t.Fatalf("resume exit %d: %s", code, stderr.String())
	}
	if !bytes.Equal(mustRead(t, firstCSV), mustRead(t, secondCSV)) {
		t.Error("resumed export differs")
	}
}

// TestRealMainShardFlagErrors: the shard/merge/checkpoint flag surface
// rejects contradictory combinations with usage errors (exit 2).
func TestRealMainShardFlagErrors(t *testing.T) {
	sc := scenarioPath(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"shard without shard-out", []string{"-scenario", sc, "-shard", "0/2"}},
		{"shard-out without shard", []string{"-scenario", sc, "-shard-out", "s.json"}},
		{"bad shard spec", []string{"-scenario", sc, "-shard", "2/2", "-shard-out", "s.json"}},
		{"shard with csv", []string{"-scenario", sc, "-shard", "0/2", "-shard-out", "s.json", "-csv", "o.csv"}},
		{"shard with merge", []string{"-scenario", sc, "-shard", "0/2", "-shard-out", "s.json", "-merge", "a.json"}},
		{"merge with checkpoint", []string{"-scenario", sc, "-merge", "a.json", "-checkpoint", "ck.json"}},
		{"merge with timeseries", []string{"-scenario", sc, "-merge", "a.json", "-timeseries-out", "ts.csv"}},
		{"checkpoint with timeseries", []string{"-scenario", sc, "-checkpoint", "ck.json", "-timeseries-out", "ts.csv"}},
	} {
		var stdout, stderr bytes.Buffer
		if code := realMain(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr.String())
		}
	}
}
