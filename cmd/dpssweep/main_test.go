package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dpsim/internal/telemetry"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the telemetry test reads
// stderr while realMain is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func scenarioPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("..", "..", "examples", "scenarios", "openload.json")
}

// TestRealMainSmoke drives the full CLI path in-process: exports land
// complete, the structured log stream parses, and exit codes behave.
func TestRealMainSmoke(t *testing.T) {
	dir := t.TempDir()
	csvOut := filepath.Join(dir, "out.csv")
	jsonOut := filepath.Join(dir, "out.json")
	tsOut := filepath.Join(dir, "ts.csv")
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-scenario", scenarioPath(t), "-replications", "2", "-workers", "2", "-q",
		"-csv", csvOut, "-json", jsonOut, "-timeseries-out", tsOut, "-log-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	// Exports are complete files (atomic write), parseable as their format.
	rows, err := csv.NewReader(mustOpen(t, csvOut)).ReadAll()
	if err != nil || len(rows) < 2 {
		t.Fatalf("csv export: rows=%d err=%v", len(rows), err)
	}
	var report struct {
		Scenario string `json:"scenario"`
	}
	if err := json.Unmarshal(mustRead(t, jsonOut), &report); err != nil {
		t.Fatalf("json export: %v", err)
	}
	if report.Scenario != "openload" {
		t.Errorf("scenario = %q", report.Scenario)
	}
	if tsRows, err := csv.NewReader(mustOpen(t, tsOut)).ReadAll(); err != nil || len(tsRows) < 2 {
		t.Fatalf("timeseries export: rows=%d err=%v", len(tsRows), err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 3 {
		t.Errorf("temp files left behind: %v", entries)
	}
	// Every stderr line is a JSON slog record; the lifecycle events appear.
	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(stderr.String()), "\n") {
		var rec struct {
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		msgs = append(msgs, rec.Msg)
	}
	joined := strings.Join(msgs, ";")
	for _, want := range []string{"sweep starting", "sweep finished", "export written"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log stream missing %q event: %v", want, msgs)
		}
	}
}

func TestRealMainFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"missing scenario", []string{"-q"}, 2},
		{"bad replications", []string{"-scenario", "x.json", "-replications", "0"}, 2},
		{"unknown flag", []string{"-nope"}, 2},
		{"bad telemetry addr", []string{"-scenario", scenarioPath(t), "-telemetry-addr", "256.0.0.1:bad"}, 1},
		{"missing file", []string{"-scenario", "does-not-exist.json"}, 1},
	} {
		var stdout, stderr bytes.Buffer
		if code := realMain(tc.args, &stdout, &stderr); code != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.code, stderr.String())
		}
	}
}

// TestRealMainTelemetryScrape: with -telemetry-addr :0, the CLI prints
// the bound address to stderr and a live scrape mid-sweep serves sweep
// metrics and progress.
func TestRealMainTelemetryScrape(t *testing.T) {
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	done := make(chan int, 1)
	// Enough replications that the sweep is still running when the scrape
	// lands (the whole grid is ~hundreds of ms; the address appears in the
	// first few ms).
	go func() {
		done <- realMain([]string{
			"-scenario", scenarioPath(t), "-replications", "40", "-workers", "2", "-q",
			"-telemetry-addr", "127.0.0.1:0",
		}, &stdout, stderr)
	}()

	addrRE := regexp.MustCompile(`telemetry: serving on http://(\S+)`)
	var addr string
	for i := 0; i < 500 && addr == ""; i++ {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case code := <-done:
			t.Fatalf("realMain exited (%d) before printing the telemetry address: %s", code, stderr.String())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("telemetry address never printed: %s", stderr.String())
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dpsim_sweep_runs_total 640",
		"dpsim_sweep_runs_started_total ",
		`dpsim_sweep_worker_busy_ns_total{worker="0"}`,
		"go_goroutines ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	resp, err = http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatalf("progress: %v", err)
	}
	var info telemetry.ProgressInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Active || info.RunsTotal != 640 || info.Workers == nil || len(info.Workers) != 2 {
		t.Errorf("progress = %+v", info)
	}

	if code := <-done; code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	data := mustRead(t, path)
	return bytes.NewReader(data)
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
