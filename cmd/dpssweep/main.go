// Command dpssweep expands a declarative scenario file into an experiment
// grid — arrival process × availability process × cluster size × offered
// load × scheduler — and runs every cell with seed replications across a
// parallel worker pool.
//
// Usage:
//
//	dpssweep -scenario examples/scenarios/openload.json [-replications 20]
//	         [-workers N] [-csv out.csv] [-json out.json]
//	         [-schedulers "equipartition,malleable-hysteresis(epoch_s=45)"]
//	         [-appmodels "mix,amdahl(f=0.1),roofline(sat=8)"]
//	         [-admissions "always,token-bucket(rate=0.5)"] [-routings "round-robin,least-loaded"]
//	         [-timeseries-out ts.csv] [-sample-dt 5]
//	         [-checkpoint ck.json] [-checkpoint-every N] [-no-dedup]
//	         [-shard i/n -shard-out shard.json | -merge "a.json,b.json"]
//	         [-telemetry-addr 127.0.0.1:9100] [-log-json]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -checkpoint makes the sweep resumable: per-cell aggregate state is
// restored from the file on start (cells keyed by content hash, so a
// resume survives scenario edits — only new or edited cells re-run),
// rewritten atomically during the sweep, and written on completion,
// error or interrupt. SIGINT stops dispatching, drains in-flight runs,
// writes the final checkpoint and exits 130; re-running the identical
// command resumes and produces byte-identical exports. -checkpoint is
// rejected alongside -timeseries-out: checkpoint-restored replications
// are not re-observed, so a resumed sweep would write an incomplete
// time-series. See docs/sweep.md.
//
// -shard i/n runs only the cells that content-hash into shard i of n
// and writes their aggregates as a shard artifact (-shard-out, required;
// the report exports -csv/-json/-timeseries-out are disallowed). Shards
// are disjoint and cover the grid, so n processes — on one machine or
// many — each run one shard, and -merge combines the artifacts into the
// full report, byte-identical to a single-process run.
//
// -no-dedup disables content-hash deduplication (identical cells run
// once and share results by default; exports are identical either way).
//
// -telemetry-addr starts the runtime telemetry server (internal/telemetry)
// for the duration of the sweep: /metrics serves the process's live
// metrics in Prometheus text format (cells done, throughput, per-worker
// busy fractions, fold-frontier lag, Go heap/GC health; ?format=json for
// JSON), /progress serves a machine-readable progress report with ETA,
// /healthz answers liveness probes, and /debug/pprof/ exposes the Go
// profiler for live CPU/heap profiling of a long sweep. The bound
// address is printed to stderr ("telemetry: serving on http://..."), so
// ":0" picks a free port. See docs/telemetry.md.
//
// -log-json mirrors the run's lifecycle (start, telemetry address, run
// completion with throughput, each export) as structured log/slog JSON
// records on stderr — one object per line for log shippers. Without the
// flag no structured records are emitted.
//
// -timeseries-out opts every replication into fixed-interval sampling
// (internal/obs) and streams the samples as one CSV: the grid-identity
// columns (arrival, availability, nodes, load, scheduler, appmodel,
// rep) followed by the sample columns. Rows appear in grid order and
// the file is byte-identical for any -workers value; the aggregate
// exports are unchanged by sampling. -sample-dt sets the interval,
// falling back to the scenario's observe.sample_dt_s, then 1s.
//
// All file exports (-csv, -json, -timeseries-out) are written
// atomically: content streams into a temp file in the destination
// directory and is renamed into place only on success, so a killed or
// failed sweep never leaves a truncated export behind.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (the CPU
// profile covers the grid run; the heap profile is captured after it),
// so hot-path regressions can be diagnosed with `go tool pprof` without
// editing code.
//
// The aggregate table always prints to stdout; -csv and -json additionally
// export machine-readable results ("-" writes to stdout instead of a
// file). Identical scenarios and seeds produce identical exports
// regardless of the worker count.
//
// -schedulers overrides the scenario's scheduler axis with a
// comma-separated list of scheduler specs — a registered policy name,
// optionally parameterized as "name(key=value,...)"; valid names come
// from the policy registry (internal/sched) and are listed in the
// flag's help text.
//
// -appmodels overrides the scenario's application performance-model axis
// the same way: a comma-separated list of model specs from the appmodel
// registry (internal/appmodel), plus the sentinel "mix" for each mix
// component's native model.
//
// -admissions and -routings override a federated scenario's admission
// and routing policy axes (internal/federation registries; the scenario
// must carry a "federation" block — see docs/federation.md). A federated
// sweep fixes the per-cluster topology and sweeps admission × routing
// instead of the scheduler/appmodel/availability axes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dpsim/internal/appmodel"
	"dpsim/internal/federation"
	"dpsim/internal/obs"
	"dpsim/internal/scenario"
	"dpsim/internal/sched"
	"dpsim/internal/sweep"
	"dpsim/internal/telemetry"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its environment made explicit, so the CLI smoke
// tests can drive the binary's full path — telemetry server included —
// in-process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpssweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarioPath := fs.String("scenario", "", "scenario JSON file (required)")
	replications := fs.Int("replications", 1, "seed replications per grid cell")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	schedulers := fs.String("schedulers", "",
		"comma-separated scheduler specs forming the grid axis, each NAME or NAME(k=v,...)\n"+
			"(overrides the scenario's list; valid names: "+strings.Join(sched.Names(), ", ")+")")
	appmodels := fs.String("appmodels", "",
		"comma-separated application performance-model specs forming the grid axis,\n"+
			"each NAME or NAME(k=v,...) (overrides the scenario's list; valid names:\n"+
			"mix, "+strings.Join(appmodel.Names(), ", ")+")")
	admissionsFlag := fs.String("admissions", "",
		"comma-separated federation admission-policy specs forming the grid axis,\n"+
			"each NAME or NAME(k=v,...) (requires a federated scenario; valid names: "+
			strings.Join(federation.AdmissionNames(), ", ")+")")
	routingsFlag := fs.String("routings", "",
		"comma-separated federation routing-policy specs forming the grid axis,\n"+
			"each NAME or NAME(k=v,...) (requires a federated scenario; valid names: "+
			strings.Join(federation.RouterNames(), ", ")+")")
	csvPath := fs.String("csv", "", "write aggregate CSV to this file (\"-\" for stdout)")
	jsonPath := fs.String("json", "", "write aggregate JSON to this file (\"-\" for stdout)")
	tsPath := fs.String("timeseries-out", "",
		"write per-replication time-series samples as CSV (enables per-cell sampling)")
	sampleDT := fs.Float64("sample-dt", 0,
		"time-series sample interval [s] (0 = the scenario's observe.sample_dt_s, else 1)")
	checkpointPath := fs.String("checkpoint", "",
		"resumable fold checkpoint file: restored on start, rewritten during the sweep,\n"+
			"written on completion, error or interrupt (SIGINT exits 130 after checkpointing)")
	checkpointEvery := fs.Int("checkpoint-every", 0,
		"checkpoint cadence in executed runs (0 = default "+fmt.Sprint(sweep.DefaultCheckpointEvery)+")")
	noDedup := fs.Bool("no-dedup", false,
		"run duplicate grid cells instead of deduplicating them by content hash")
	shardSpec := fs.String("shard", "",
		"run only shard i/n of the grid (content-hash partition) and write a shard\n"+
			"artifact to -shard-out instead of report exports")
	shardOut := fs.String("shard-out", "", "shard artifact output file (required with -shard)")
	mergeList := fs.String("merge", "",
		"merge comma-separated shard artifacts into the full report instead of running\n"+
			"(requires the -scenario the shards ran)")
	telemetryAddr := fs.String("telemetry-addr", "",
		"serve runtime telemetry on this address while the sweep runs:\n"+
			strings.Join(telemetry.Endpoints(), ", ")+" (\":0\" picks a free port;\n"+
			"the bound address is printed to stderr)")
	logJSON := fs.Bool("log-json", false,
		"emit structured JSON logs (log/slog) for the run lifecycle on stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (captured after the sweep) to this file")
	quiet := fs.Bool("q", false, "suppress the progress line and table")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: dpssweep -scenario FILE [-replications N] [-workers N] [-schedulers LIST] [-appmodels LIST]\n"+
				"                [-admissions LIST] [-routings LIST]\n"+
				"                [-csv FILE] [-json FILE] [-timeseries-out FILE] [-sample-dt S]\n"+
				"                [-checkpoint FILE] [-checkpoint-every N] [-no-dedup]\n"+
				"                [-shard I/N -shard-out FILE | -merge FILES]\n"+
				"                [-telemetry-addr ADDR] [-log-json] [-cpuprofile FILE] [-memprofile FILE]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := telemetry.NewLogger(stderr, *logJSON)
	fail := func(context string, err error) int {
		if context != "" {
			fmt.Fprintf(stderr, "dpssweep: %s: %v\n", context, err)
		} else {
			fmt.Fprintf(stderr, "dpssweep: %v\n", err)
		}
		logger.Error("sweep failed", "context", context, "err", err.Error())
		return 1
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "dpssweep: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *scenarioPath == "" {
		fmt.Fprintln(stderr, "dpssweep: -scenario is required")
		fs.Usage()
		return 2
	}
	if *replications <= 0 {
		fmt.Fprintln(stderr, "dpssweep: -replications must be positive")
		return 2
	}
	if *shardSpec != "" && *mergeList != "" {
		fmt.Fprintln(stderr, "dpssweep: -shard and -merge are mutually exclusive")
		return 2
	}
	if *shardSpec != "" {
		if *shardOut == "" {
			fmt.Fprintln(stderr, "dpssweep: -shard requires -shard-out")
			return 2
		}
		if *csvPath != "" || *jsonPath != "" || *tsPath != "" {
			fmt.Fprintln(stderr, "dpssweep: -shard writes a shard artifact; -csv/-json/-timeseries-out belong to the merged report")
			return 2
		}
	}
	if *shardSpec == "" && *shardOut != "" {
		fmt.Fprintln(stderr, "dpssweep: -shard-out requires -shard")
		return 2
	}
	if *mergeList != "" && (*tsPath != "" || *checkpointPath != "") {
		fmt.Fprintln(stderr, "dpssweep: -merge combines existing artifacts; -timeseries-out/-checkpoint do not apply")
		return 2
	}
	if *checkpointPath != "" && *tsPath != "" {
		fmt.Fprintln(stderr, "dpssweep: -checkpoint cannot be combined with -timeseries-out: checkpoint-restored replications are not re-observed, so a resumed sweep would write an incomplete time-series")
		return 2
	}

	spec, err := scenario.Load(*scenarioPath)
	if err != nil {
		return fail("", err)
	}
	if *schedulers != "" {
		if err := spec.ApplySchedulerOverride(*schedulers); err != nil {
			return fail("", err)
		}
	}
	if *appmodels != "" {
		if err := spec.ApplyAppModelOverride(*appmodels); err != nil {
			return fail("", err)
		}
	}
	if *admissionsFlag != "" {
		if err := spec.ApplyAdmissionOverride(*admissionsFlag); err != nil {
			return fail("", err)
		}
	}
	if *routingsFlag != "" {
		if err := spec.ApplyRoutingOverride(*routingsFlag); err != nil {
			return fail("", err)
		}
	}
	// writeReports renders the aggregate table and the -csv/-json exports;
	// shared by the run and merge paths.
	writeReports := func(stats []sweep.CellStats) int {
		if !*quiet {
			printTable(stdout, stats)
		}
		if err := export(*csvPath, stdout, func(w io.Writer) error {
			return sweep.WriteCSV(w, spec.Name, stats)
		}); err != nil {
			return fail("csv", err)
		}
		if *csvPath != "" && *csvPath != "-" {
			logger.Info("export written", "kind", "csv", "path", *csvPath)
		}
		if err := export(*jsonPath, stdout, func(w io.Writer) error {
			return sweep.WriteJSON(w, spec.Name, stats)
		}); err != nil {
			return fail("json", err)
		}
		if *jsonPath != "" && *jsonPath != "-" {
			logger.Info("export written", "kind", "json", "path", *jsonPath)
		}
		return 0
	}

	// Merge mode: no simulation — combine shard artifacts into the full
	// grid report (byte-identical to a single-process run).
	if *mergeList != "" {
		paths := strings.Split(*mergeList, ",")
		stats, reps, err := sweep.MergeShards(spec, paths)
		if err != nil {
			return fail("merge", err)
		}
		logger.Info("shards merged", "artifacts", len(paths), "cells", len(stats), "replications", reps)
		return writeReports(stats)
	}

	cells := sweep.Cells(spec)
	opt := sweep.Options{
		Replications:    *replications,
		Workers:         *workers,
		NoDedup:         *noDedup,
		Checkpoint:      *checkpointPath,
		CheckpointEvery: *checkpointEvery,
	}
	if *shardSpec != "" {
		sel, err := sweep.ParseShard(*shardSpec)
		if err != nil {
			fmt.Fprintf(stderr, "dpssweep: %v\n", err)
			return 2
		}
		opt.Shard = sel
	}
	// SIGINT stops the sweep gracefully: dispatching halts, in-flight
	// runs drain, the final checkpoint is written, and dpssweep exits
	// 130. A second SIGINT falls back to the default hard kill.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	opt.Interrupted = func() bool {
		select {
		case <-sigc:
			signal.Stop(sigc)
			return true
		default:
			return false
		}
	}
	poolSize := opt.Workers
	if poolSize <= 0 {
		poolSize = runtime.GOMAXPROCS(0)
	}

	// Runtime telemetry: metrics registry + HTTP server for the duration
	// of the sweep. The sweep itself reports through opt.Metrics; Go
	// runtime health rides along via scrape-time gauges.
	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		m := sweep.NewMetrics(reg, poolSize)
		srv, err := telemetry.NewServer(*telemetryAddr, reg, m)
		if err != nil {
			return fail("telemetry", err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: serving on http://%s\n", srv.Addr())
		logger.Info("telemetry serving", "addr", srv.Addr())
		opt.Metrics = m
	}

	// Per-cell sampling: each replication gets its own recorder, and the
	// sink drains them at the in-order fold frontier, so the CSV is
	// byte-identical for any -workers value. Aggregate exports are
	// untouched — probes observe, they never participate. The file is
	// written atomically: samples stream into a temp file that is only
	// renamed onto -timeseries-out after a clean finish.
	var tsFile *sweep.AtomicFile
	var tsSink *sweep.TimeSeriesSink
	if *tsPath != "" {
		dt := *sampleDT
		if dt == 0 && spec.Observe != nil {
			dt = spec.Observe.SampleDTS
		}
		if dt == 0 {
			dt = 1
		}
		f, err := sweep.CreateAtomic(*tsPath)
		if err != nil {
			return fail("timeseries", err)
		}
		defer f.Abort()
		tsFile = f
		tsSink = sweep.NewTimeSeriesSink(f)
		opt.SampleDTS = dt
		opt.Observe = func(c sweep.Cell, rep int) obs.Probe {
			cfg := obs.Config{Label: c.Scheduler}
			if spec.Observe != nil {
				cfg = spec.Observe.RecorderConfig(c.Scheduler)
			}
			return obs.NewRecorder(cfg)
		}
		opt.OnObserved = tsSink.OnObserved
	}
	start := time.Now()
	totalRuns := len(cells) * *replications
	logger.Info("sweep starting", "scenario", spec.Name, "cells", len(cells),
		"replications", *replications, "runs", totalRuns, "workers", poolSize)
	if !*quiet {
		fmt.Fprintf(stdout, "scenario %q: %d cells × %d replications = %d runs on %d workers\n",
			spec.Name, len(cells), *replications, totalRuns, poolSize)
		// The progress line adds live throughput and an ETA extrapolated
		// from it (the same numbers /progress serves).
		opt.Progress = func(done, total int) {
			elapsed := time.Since(start).Seconds()
			var rate float64
			if elapsed > 0 {
				rate = float64(done) / elapsed
			}
			eta := "--"
			if rate > 0 {
				eta = (time.Duration(float64(total-done) / rate * float64(time.Second))).Round(time.Second).String()
			}
			fmt.Fprintf(stdout, "\r%d/%d runs  %.1f runs/s  ETA %s ", done, total, rate, eta)
			if done == total {
				fmt.Fprintln(stdout)
			}
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail("cpuprofile", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail("cpuprofile", err)
		}
		defer f.Close()
	}
	var stats []sweep.CellStats
	var art *sweep.ShardArtifact
	if *shardSpec != "" {
		art, err = sweep.RunShard(spec, opt)
	} else {
		stats, err = sweep.Run(spec, opt)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		if errors.Is(err, sweep.ErrInterrupted) {
			msg := "interrupted"
			if *checkpointPath != "" {
				msg += "; checkpoint written to " + *checkpointPath + " (rerun the same command to resume)"
			}
			fmt.Fprintf(stderr, "dpssweep: %s\n", msg)
			logger.Error("sweep interrupted", "checkpoint", *checkpointPath)
			return 130
		}
		return fail("", err)
	}
	elapsed := time.Since(start)
	logger.Info("sweep finished", "runs", totalRuns,
		"elapsed_s", elapsed.Seconds(),
		"runs_per_second", float64(totalRuns)/elapsed.Seconds())
	if tsSink != nil {
		ferr := tsSink.Flush()
		if ferr == nil {
			ferr = tsFile.Commit()
		}
		if ferr != nil {
			return fail("timeseries", ferr)
		}
		logger.Info("export written", "kind", "timeseries", "path", *tsPath)
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr == nil {
			runtime.GC() // settle the heap so the profile shows retained memory
			ferr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			return fail("memprofile", ferr)
		}
	}

	if art != nil {
		if err := sweep.WriteShard(*shardOut, art); err != nil {
			return fail("shard", err)
		}
		logger.Info("export written", "kind", "shard", "path", *shardOut)
		if !*quiet {
			fmt.Fprintf(stdout, "shard %d/%d: %d unique cells -> %s\n",
				opt.Shard.Index, opt.Shard.Count, len(art.Cells), *shardOut)
		}
		return 0
	}
	return writeReports(stats)
}

func printTable(stdout io.Writer, stats []sweep.CellStats) {
	width := len("scheduler")
	mwidth := len("appmodel")
	awidth, rwidth := len("admission"), len("routing")
	federated := false
	for _, st := range stats {
		if len(st.Scheduler) > width {
			width = len(st.Scheduler)
		}
		if len(st.AppModel) > mwidth {
			mwidth = len(st.AppModel)
		}
		if len(st.Admission) > awidth {
			awidth = len(st.Admission)
		}
		if len(st.Routing) > rwidth {
			rwidth = len(st.Routing)
		}
		if st.Admission != "none" || st.Routing != "none" {
			federated = true
		}
	}
	// The admission/routing columns only exist for federated grids —
	// legacy sweeps keep their historical table layout.
	policy := func(st sweep.CellStats) string {
		if !federated {
			return ""
		}
		return fmt.Sprintf(" %-*s %-*s", awidth, st.Admission, rwidth, st.Routing)
	}
	policyHeader := ""
	if federated {
		policyHeader = fmt.Sprintf(" %-*s %-*s", awidth, "admission", rwidth, "routing")
	}
	fmt.Fprintf(stdout, "\n%-16s %-16s %6s %5s %-*s %-*s%s %10s %10s %9s %10s %8s %8s %8s %8s %9s %9s\n",
		"arrival", "availability", "nodes", "load", width, "scheduler", mwidth, "appmodel", policyHeader,
		"mean resp", "p95 resp", "wait", "makespan", "util", "avutil", "slowdn", "realloc", "lost work", "redist")
	for _, st := range stats {
		fmt.Fprintf(stdout, "%-16s %-16s %6d %5.2g %-*s %-*s%s %9.1fs %9.1fs %8.1fs %9.1fs %7.1f%% %7.1f%% %8.2f %8.1f %8.1fs %8.1fs\n",
			st.Arrival, st.Avail, st.Nodes, st.Load, width, st.Scheduler, mwidth, st.AppModel, policy(st),
			st.MeanResponse, st.P95Response, st.MeanWait,
			st.MeanMakespan, 100*st.MeanUtilization, 100*st.MeanAvailUtilization,
			st.MeanSlowdown, st.MeanReallocations, st.MeanLostWork, st.MeanRedistribution)
	}
}

// export renders write's output to path: "" skips, "-" streams to
// stdout, and a real path is written atomically (temp file + rename) so
// a failure never leaves a truncated export.
func export(path string, stdout io.Writer, write func(io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return write(stdout)
	}
	return sweep.WriteFileAtomic(path, write)
}
