// Command dpssweep expands a declarative scenario file into an experiment
// grid — arrival process × availability process × cluster size × offered
// load × scheduler — and runs every cell with seed replications across a
// parallel worker pool.
//
// Usage:
//
//	dpssweep -scenario examples/scenarios/openload.json [-replications 20]
//	         [-workers N] [-csv out.csv] [-json out.json]
//	         [-schedulers "equipartition,malleable-hysteresis(epoch_s=45)"]
//	         [-appmodels "mix,amdahl(f=0.1),roofline(sat=8)"]
//	         [-timeseries-out ts.csv] [-sample-dt 5]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -timeseries-out opts every replication into fixed-interval sampling
// (internal/obs) and streams the samples as one CSV: the grid-identity
// columns (arrival, availability, nodes, load, scheduler, appmodel,
// rep) followed by the sample columns. Rows appear in grid order and
// the file is byte-identical for any -workers value; the aggregate
// exports are unchanged by sampling. -sample-dt sets the interval,
// falling back to the scenario's observe.sample_dt_s, then 1s.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (the CPU
// profile covers the grid run; the heap profile is captured after it),
// so hot-path regressions can be diagnosed with `go tool pprof` without
// editing code.
//
// The aggregate table always prints to stdout; -csv and -json additionally
// export machine-readable results ("-" writes to stdout instead of a
// file). Identical scenarios and seeds produce identical exports
// regardless of the worker count.
//
// -schedulers overrides the scenario's scheduler axis with a
// comma-separated list of scheduler specs — a registered policy name,
// optionally parameterized as "name(key=value,...)"; valid names come
// from the policy registry (internal/sched) and are listed in the
// flag's help text.
//
// -appmodels overrides the scenario's application performance-model axis
// the same way: a comma-separated list of model specs from the appmodel
// registry (internal/appmodel), plus the sentinel "mix" for each mix
// component's native model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"dpsim/internal/appmodel"
	"dpsim/internal/obs"
	"dpsim/internal/scenario"
	"dpsim/internal/sched"
	"dpsim/internal/sweep"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: dpssweep -scenario FILE [-replications N] [-workers N] [-schedulers LIST] [-appmodels LIST] [-csv FILE] [-json FILE] [-timeseries-out FILE] [-sample-dt S] [-cpuprofile FILE] [-memprofile FILE]\n")
	flag.PrintDefaults()
}

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (required)")
	replications := flag.Int("replications", 1, "seed replications per grid cell")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	schedulers := flag.String("schedulers", "",
		"comma-separated scheduler specs forming the grid axis, each NAME or NAME(k=v,...)\n"+
			"(overrides the scenario's list; valid names: "+strings.Join(sched.Names(), ", ")+")")
	appmodels := flag.String("appmodels", "",
		"comma-separated application performance-model specs forming the grid axis,\n"+
			"each NAME or NAME(k=v,...) (overrides the scenario's list; valid names:\n"+
			"mix, "+strings.Join(appmodel.Names(), ", ")+")")
	csvPath := flag.String("csv", "", "write aggregate CSV to this file (\"-\" for stdout)")
	jsonPath := flag.String("json", "", "write aggregate JSON to this file (\"-\" for stdout)")
	tsPath := flag.String("timeseries-out", "",
		"write per-replication time-series samples as CSV (enables per-cell sampling)")
	sampleDT := flag.Float64("sample-dt", 0,
		"time-series sample interval [s] (0 = the scenario's observe.sample_dt_s, else 1)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (captured after the sweep) to this file")
	quiet := flag.Bool("q", false, "suppress the progress line and table")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dpssweep: unexpected arguments: %v\n", flag.Args())
		usage()
		os.Exit(2)
	}
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "dpssweep: -scenario is required")
		usage()
		os.Exit(2)
	}
	if *replications <= 0 {
		fmt.Fprintln(os.Stderr, "dpssweep: -replications must be positive")
		os.Exit(2)
	}

	spec, err := scenario.Load(*scenarioPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpssweep: %v\n", err)
		os.Exit(1)
	}
	if *schedulers != "" {
		if err := spec.ApplySchedulerOverride(*schedulers); err != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: %v\n", err)
			os.Exit(1)
		}
	}
	if *appmodels != "" {
		if err := spec.ApplyAppModelOverride(*appmodels); err != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: %v\n", err)
			os.Exit(1)
		}
	}
	cells := sweep.Cells(spec)
	opt := sweep.Options{Replications: *replications, Workers: *workers}
	// Per-cell sampling: each replication gets its own recorder, and the
	// sink drains them at the in-order fold frontier, so the CSV is
	// byte-identical for any -workers value. Aggregate exports are
	// untouched — probes observe, they never participate.
	var tsFile *os.File
	var tsSink *sweep.TimeSeriesSink
	if *tsPath != "" {
		dt := *sampleDT
		if dt == 0 && spec.Observe != nil {
			dt = spec.Observe.SampleDTS
		}
		if dt == 0 {
			dt = 1
		}
		f, err := os.Create(*tsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: timeseries: %v\n", err)
			os.Exit(1)
		}
		tsFile = f
		tsSink = sweep.NewTimeSeriesSink(f)
		opt.SampleDTS = dt
		opt.Observe = func(c sweep.Cell, rep int) obs.Probe {
			cfg := obs.Config{Label: c.Scheduler}
			if spec.Observe != nil {
				cfg = spec.Observe.RecorderConfig(c.Scheduler)
			}
			return obs.NewRecorder(cfg)
		}
		opt.OnObserved = tsSink.OnObserved
	}
	if !*quiet {
		w := opt.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("scenario %q: %d cells × %d replications = %d runs on %d workers\n",
			spec.Name, len(cells), *replications, len(cells)**replications, w)
		opt.Progress = func(done, total int) {
			fmt.Printf("\r%d/%d runs", done, total)
			if done == total {
				fmt.Println()
			}
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	stats, err := sweep.Run(spec, opt)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpssweep: %v\n", err)
		os.Exit(1)
	}
	if tsSink != nil {
		ferr := tsSink.Flush()
		if cerr := tsFile.Close(); ferr == nil {
			ferr = cerr
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: timeseries: %v\n", ferr)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr == nil {
			runtime.GC() // settle the heap so the profile shows retained memory
			ferr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "dpssweep: memprofile: %v\n", ferr)
			os.Exit(1)
		}
	}

	if !*quiet {
		printTable(stats)
	}
	if err := export(*csvPath, func(w io.Writer) error {
		return sweep.WriteCSV(w, spec.Name, stats)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dpssweep: csv: %v\n", err)
		os.Exit(1)
	}
	if err := export(*jsonPath, func(w io.Writer) error {
		return sweep.WriteJSON(w, spec.Name, stats)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dpssweep: json: %v\n", err)
		os.Exit(1)
	}
}

func printTable(stats []sweep.CellStats) {
	width := len("scheduler")
	mwidth := len("appmodel")
	for _, st := range stats {
		if len(st.Scheduler) > width {
			width = len(st.Scheduler)
		}
		if len(st.AppModel) > mwidth {
			mwidth = len(st.AppModel)
		}
	}
	fmt.Printf("\n%-16s %-16s %6s %5s %-*s %-*s %10s %10s %9s %10s %8s %8s %8s %8s %9s %9s\n",
		"arrival", "availability", "nodes", "load", width, "scheduler", mwidth, "appmodel",
		"mean resp", "p95 resp", "wait", "makespan", "util", "avutil", "slowdn", "realloc", "lost work", "redist")
	for _, st := range stats {
		fmt.Printf("%-16s %-16s %6d %5.2g %-*s %-*s %9.1fs %9.1fs %8.1fs %9.1fs %7.1f%% %7.1f%% %8.2f %8.1f %8.1fs %8.1fs\n",
			st.Arrival, st.Avail, st.Nodes, st.Load, width, st.Scheduler, mwidth, st.AppModel,
			st.MeanResponse, st.P95Response, st.MeanWait,
			st.MeanMakespan, 100*st.MeanUtilization, 100*st.MeanAvailUtilization,
			st.MeanSlowdown, st.MeanReallocations, st.MeanLostWork, st.MeanRedistribution)
	}
}

func export(path string, write func(io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
