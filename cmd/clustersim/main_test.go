package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeObservabilityExports drives the full CLI path against the
// shipped downey_spot scenario with every observability export enabled,
// then checks the artifacts: the trace must be valid trace-event JSON
// carrying the scheduler process tracks, the time series must have rows,
// and the summary must account for the workload.
func TestSmokeObservabilityExports(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	tsPath := filepath.Join(dir, "ts.csv")
	sumPath := filepath.Join(dir, "summary.json")
	scenarioPath := filepath.Join("..", "..", "examples", "scenarios", "downey_spot.json")

	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-scenario", scenarioPath,
		"-trace-out", tracePath,
		"-timeseries-out", tsPath,
		"-summary-out", sumPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "equipartition") {
		t.Errorf("report missing scheduler table:\n%s", stdout.String())
	}

	// Trace: valid JSON, one named process per scheduler, job tracks,
	// counter series.
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	procs := map[string]bool{}
	counters := map[string]bool{}
	jobTracks := 0
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "M":
			args, _ := ev["args"].(map[string]any)
			name, _ := args["name"].(string)
			if ev["name"] == "process_name" {
				procs[name] = true
			}
			if ev["name"] == "thread_name" && strings.HasPrefix(name, "job ") {
				jobTracks++
			}
		case "C":
			counters[ev["name"].(string)] = true
		}
	}
	for _, want := range []string{"equipartition", "malleable-hysteresis(epoch_s=30,min_delta=2)"} {
		if !procs[want] {
			t.Errorf("trace missing process track %q (have %v)", want, procs)
		}
	}
	if jobTracks == 0 {
		t.Error("trace has no job tracks")
	}
	for _, want := range []string{"jobs", "nodes", "capacity"} {
		if !counters[want] {
			t.Errorf("trace missing counter %q (have %v)", want, counters)
		}
	}

	// Time series: header + a nonzero number of sample rows.
	tsData, err := os.ReadFile(tsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(tsData)), "\n")
	if len(lines) < 2 {
		t.Fatalf("time series has no sample rows:\n%s", tsData)
	}
	if !strings.HasPrefix(lines[0], "scheduler,t_s,") {
		t.Errorf("time-series header = %q", lines[0])
	}

	// Summary: one entry per scheduler, jobs accounted for.
	sumData, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	var summaries []map[string]any
	if err := json.Unmarshal(sumData, &summaries); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if len(summaries) != 2 {
		t.Fatalf("summary has %d entries, want 2", len(summaries))
	}
	for _, s := range summaries {
		if arrived, _ := s["arrived"].(float64); arrived == 0 {
			t.Errorf("summary entry %v recorded no arrivals", s["label"])
		}
		if samples, _ := s["samples"].(float64); samples == 0 {
			t.Errorf("summary entry %v recorded no samples", s["label"])
		}
	}
}

// TestObservabilityDoesNotChangeJSONResults: the -json result output
// must be byte-identical with and without the observability exports
// enabled — recording is an observer, not a participant.
func TestObservabilityDoesNotChangeJSONResults(t *testing.T) {
	dir := t.TempDir()
	scenarioPath := filepath.Join("..", "..", "examples", "scenarios", "downey_spot.json")

	var bare, observed, stderr bytes.Buffer
	if code := realMain([]string{"-scenario", scenarioPath, "-json"}, &bare, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if code := realMain([]string{
		"-scenario", scenarioPath, "-json",
		"-trace-out", filepath.Join(dir, "t.json"),
		"-timeseries-out", filepath.Join(dir, "ts.csv"),
	}, &observed, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !bytes.Equal(bare.Bytes(), observed.Bytes()) {
		t.Error("enabling observability exports changed the -json results")
	}
}

// TestBadFlagsFail: unknown arguments and bad scenarios exit non-zero.
func TestBadFlagsFail(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"stray"}, &out, &errBuf); code == 0 {
		t.Error("stray argument accepted")
	}
	if code := realMain([]string{"-scenario", "does-not-exist.json"}, &out, &errBuf); code == 0 {
		t.Error("missing scenario accepted")
	}
}

// TestTelemetryFlagSmoke: -telemetry-addr binds, prints the address to
// stderr, and -log-json turns stderr into a JSON record stream.
func TestTelemetryFlagSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-jobs", "6", "-telemetry-addr", "127.0.0.1:0", "-log-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	text := stderr.String()
	if !strings.Contains(text, "telemetry: serving on http://") {
		t.Errorf("stderr missing telemetry address line:\n%s", text)
	}
	sawFinished := false
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the human-readable telemetry address line
		}
		var rec struct {
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		if rec.Msg == "run finished" {
			sawFinished = true
		}
	}
	if !sawFinished {
		t.Error("no \"run finished\" slog record on stderr")
	}

	var stderr2 bytes.Buffer
	if code := realMain([]string{"-jobs", "6", "-telemetry-addr", "256.0.0.1:bad"},
		&stdout, &stderr2); code != 1 {
		t.Errorf("bad telemetry addr: exit %d, want 1", code)
	}
}
