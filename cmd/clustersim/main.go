// Command clustersim runs the paper's §9 future-work scenario: a cluster
// serving a stream of malleable applications, comparing a rigid FCFS
// scheduler against dynamic-allocation policies that use per-phase dynamic
// efficiency — the quantity the DPS simulator predicts.
//
// Usage:
//
//	clustersim [-nodes 32] [-jobs 40] [-interarrival 10] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpsim/internal/cluster"
)

func main() {
	nodes := flag.Int("nodes", 32, "cluster nodes")
	jobs := flag.Int("jobs", 40, "jobs in the workload")
	inter := flag.Float64("interarrival", 10, "mean inter-arrival time [s]")
	seed := flag.Uint64("seed", 7, "workload seed")
	flag.Parse()

	wl := cluster.PoissonWorkload(*jobs, *nodes, *inter, *seed)
	results, err := cluster.Compare(*nodes, wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cluster of %d nodes, %d LU-profile jobs, mean inter-arrival %.0fs\n\n",
		*nodes, *jobs, *inter)
	fmt.Printf("%-18s  %10s  %12s  %12s  %11s  %9s\n",
		"scheduler", "makespan", "mean resp.", "max resp.", "utilization", "mean eff.")
	for _, r := range results {
		fmt.Printf("%-18s  %9.1fs  %11.1fs  %11.1fs  %10.1f%%  %8.1f%%\n",
			r.Scheduler, r.Makespan, r.MeanResponse, r.MaxResponse,
			100*r.Utilization, 100*r.MeanAllocEfficiency)
	}
	fmt.Println("\nDynamic node allocation (equipartition, efficiency-greedy) raises the")
	fmt.Println("cluster's service rate over rigid FCFS — the paper's §1/§9 motivation.")
}
