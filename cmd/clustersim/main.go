// Command clustersim runs the paper's §9 future-work scenario: a cluster
// serving a stream of malleable applications, comparing a rigid FCFS
// scheduler against dynamic-allocation policies that use per-phase dynamic
// efficiency — the quantity the DPS simulator predicts.
//
// Usage:
//
//	clustersim [-nodes 32] [-jobs 40] [-interarrival 10] [-seed 7] [-json]
//	clustersim -scenario examples/scenarios/openload.json [-json]
//	clustersim -schedulers "rigid-fcfs,easy-backfill,malleable-hysteresis(epoch_s=45)"
//	clustersim -scenario s.json -trace-out run.trace.json -timeseries-out ts.csv
//
// Without -scenario, the classic built-in workload runs: an open Poisson
// stream of LU-profile jobs. With -scenario, the named scenario file
// supplies nodes, mix, arrival process and — when declared — the node
// availability process and reconfiguration-cost model (its first grid
// point is used; run cmd/dpssweep to cover the full grid).
//
// -schedulers overrides the compared policies with a comma-separated
// list of scheduler specs — a registered name, optionally with
// parameters as "name(key=value,...)". Valid names come from the policy
// registry (internal/sched) and are listed in the flag's help text.
//
// -appmodels overrides the scenario's application performance-model
// axis (internal/appmodel registry; "mix" = the mix's native models).
// Like the availability axis, only the first grid point runs here — run
// cmd/dpssweep to cover a multi-model grid.
//
// A scenario with a "federation" block (see docs/federation.md) switches
// the comparison from schedulers to federation policies: the fixed
// multi-cluster fleet runs once per admission × routing pair, sharing the
// open arrival stream through the federation orchestrator
// (internal/federation). -admissions and -routings override the compared
// policy lists. The table and -json report the merged fleet metrics plus
// per-pair rejected/routed job counts; observability exports carry one
// track per member cluster ("<pair>:<cluster>"), and -telemetry-addr
// additionally serves dpsim_federation_routed_jobs_total{cluster=...} and
// dpsim_federation_rejected_jobs_total.
//
// -telemetry-addr serves the runtime telemetry endpoints
// (internal/telemetry: /metrics, /progress, /healthz, /debug/pprof/)
// while the comparison runs — counters for completed runs and finished
// jobs, a run-duration histogram, and Go runtime health. The bound
// address is printed to stderr, so ":0" picks a free port. -log-json
// mirrors the run lifecycle as structured log/slog JSON records on
// stderr. See docs/telemetry.md.
//
// Observability (internal/obs): -trace-out writes a Chrome trace-event
// JSON file (load it in Perfetto or chrome://tracing; one process per
// scheduler, one track per job, capacity and queue-depth counters),
// -timeseries-out writes fixed-interval samples as CSV, and
// -summary-out writes per-run summaries (counts, charges, scheduler
// wall-clock latency) as JSON. The sample interval comes from
// -sample-dt, falling back to the scenario's observe.sample_dt_s, then
// 1s. Attaching the recorders never changes simulation results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"time"

	"dpsim/internal/appmodel"
	"dpsim/internal/cluster"
	"dpsim/internal/federation"
	"dpsim/internal/obs"
	"dpsim/internal/scenario"
	"dpsim/internal/sched"
	"dpsim/internal/sweep"
	"dpsim/internal/telemetry"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its environment made explicit, so the CLI smoke
// test can drive the binary's full path in-process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clustersim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 32, "cluster nodes")
	jobs := fs.Int("jobs", 40, "jobs in the workload")
	inter := fs.Float64("interarrival", 10, "mean inter-arrival time [s]")
	seed := fs.Uint64("seed", 7, "workload seed")
	scenarioPath := fs.String("scenario", "", "scenario JSON file (overrides the workload flags)")
	schedulers := fs.String("schedulers", "",
		"comma-separated scheduler specs to compare, each NAME or NAME(k=v,...)\n"+
			"(overrides the scenario's list; valid names: "+strings.Join(sched.Names(), ", ")+")")
	appmodels := fs.String("appmodels", "",
		"comma-separated application performance-model specs, each NAME or NAME(k=v,...)\n"+
			"(overrides the scenario's list; the first entry runs here; valid names:\n"+
			"mix, "+strings.Join(appmodel.Names(), ", ")+")")
	admissionsFlag := fs.String("admissions", "",
		"comma-separated federation admission-policy specs to compare, each NAME or\n"+
			"NAME(k=v,...) (requires a federated scenario; valid names: "+
			strings.Join(federation.AdmissionNames(), ", ")+")")
	routingsFlag := fs.String("routings", "",
		"comma-separated federation routing-policy specs to compare, each NAME or\n"+
			"NAME(k=v,...) (requires a federated scenario; valid names: "+
			strings.Join(federation.RouterNames(), ", ")+")")
	jsonOut := fs.Bool("json", false, "print machine-readable JSON results")
	traceOut := fs.String("trace-out", "",
		"write a Chrome trace-event JSON file for Perfetto / chrome://tracing")
	tsOut := fs.String("timeseries-out", "",
		"write fixed-interval time-series samples as CSV")
	sumOut := fs.String("summary-out", "",
		"write per-run observability summaries as JSON")
	sampleDT := fs.Float64("sample-dt", 0,
		"time-series sample interval [s]\n(0 = the scenario's observe.sample_dt_s, else 1)")
	telemetryAddr := fs.String("telemetry-addr", "",
		"serve runtime telemetry on this address while the comparison runs:\n"+
			strings.Join(telemetry.Endpoints(), ", ")+" (\":0\" picks a free port;\n"+
			"the bound address is printed to stderr)")
	logJSON := fs.Bool("log-json", false,
		"emit structured JSON logs (log/slog) for the run lifecycle on stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: clustersim [-nodes N] [-jobs N] [-interarrival S] [-seed N] [-scenario FILE] [-schedulers LIST] [-json]\n"+
				"                  [-admissions LIST] [-routings LIST]\n"+
				"                  [-trace-out FILE] [-timeseries-out FILE] [-summary-out FILE] [-sample-dt S]\n"+
				"                  [-telemetry-addr ADDR] [-log-json]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := telemetry.NewLogger(stderr, *logJSON)
	fail := func(err error) int {
		fmt.Fprintf(stderr, "clustersim: %v\n", err)
		logger.Error("run failed", "err", err.Error())
		return 1
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "clustersim: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	var spec *scenario.Spec
	if *scenarioPath != "" {
		var err error
		spec, err = scenario.Load(*scenarioPath)
		if err != nil {
			return fail(err)
		}
	} else {
		// The classic clustersim workload, expressed as a scenario: an
		// open Poisson stream of LU-profile jobs.
		spec = &scenario.Spec{
			Name:  "clustersim",
			Nodes: []int{*nodes},
			Seed:  *seed,
			Jobs:  *jobs,
			Mix:   []scenario.MixSpec{{Kind: "lu"}},
			Arrivals: scenario.ArrivalList{
				{Process: "poisson", MeanInterarrivalS: *inter},
			},
		}
		if err := spec.Validate(); err != nil {
			return fail(err)
		}
	}
	if *schedulers != "" {
		if err := spec.ApplySchedulerOverride(*schedulers); err != nil {
			return fail(err)
		}
	}
	if *appmodels != "" {
		if err := spec.ApplyAppModelOverride(*appmodels); err != nil {
			return fail(err)
		}
	}
	if *admissionsFlag != "" {
		if err := spec.ApplyAdmissionOverride(*admissionsFlag); err != nil {
			return fail(err)
		}
	}
	if *routingsFlag != "" {
		if err := spec.ApplyRoutingOverride(*routingsFlag); err != nil {
			return fail(err)
		}
	}

	// Recorders are attached only when an observability export was
	// requested: the default path runs with no probe, the simulator's
	// zero-cost configuration.
	observing := *traceOut != "" || *tsOut != "" || *sumOut != ""
	dt := *sampleDT
	if dt == 0 && spec.Observe != nil {
		dt = spec.Observe.SampleDTS
	}
	if dt == 0 {
		dt = 1
	}

	// Telemetry: simple run/job counters plus a run-duration histogram and
	// Go runtime health; clustersim has no grid, so there is no progress
	// source and /progress reports inactive.
	var runsMetric, jobsMetric *telemetry.Counter
	var runDur *telemetry.Histogram
	var reg *telemetry.Registry
	if *telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		runsMetric = reg.Counter("dpsim_clustersim_runs_total",
			"Completed scheduler-comparison runs.")
		jobsMetric = reg.Counter("dpsim_clustersim_jobs_finished_total",
			"Jobs finished across all compared runs.")
		runDur = reg.Histogram("dpsim_clustersim_run_duration_seconds",
			"Wall-clock duration of one scheduler's simulation run.")
		srv, err := telemetry.NewServer(*telemetryAddr, reg, nil)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: serving on http://%s\n", srv.Addr())
		logger.Info("telemetry serving", "addr", srv.Addr())
	}

	if spec.Federation != nil {
		return runFederated(spec, fedEnv{
			stdout: stdout, logger: logger, fail: fail,
			jsonOut: *jsonOut, observing: observing, dt: dt,
			traceOut: *traceOut, tsOut: *tsOut, sumOut: *sumOut,
			reg: reg, runsMetric: runsMetric, jobsMetric: jobsMetric, runDur: runDur,
		})
	}

	n := spec.Nodes[0]
	load := spec.Loads[0]
	logger.Info("comparison starting", "scenario", spec.Name, "nodes", n,
		"schedulers", len(spec.Schedulers))
	var results []cluster.Result
	var recorders []*obs.Recorder
	labels := make([]string, len(spec.Schedulers))
	for i := range spec.Schedulers {
		labels[i] = spec.Schedulers[i].Label()
		params := scenario.CellParams{
			Nodes: n, Load: load, SchedulerIdx: i, ArrivalIdx: 0, AvailIdx: 0, AppModelIdx: 0,
			Seed: spec.Seed,
		}
		if observing {
			cfg := obs.Config{Label: labels[i]}
			if spec.Observe != nil {
				cfg = spec.Observe.RecorderConfig(labels[i])
			}
			rec := obs.NewRecorder(cfg)
			recorders = append(recorders, rec)
			params.Probe = rec
			params.SampleDTS = dt
		}
		// The first grid point throughout, including the first
		// availability process when the scenario declares any.
		t0 := time.Now()
		run, err := spec.RunCell(params)
		if err != nil {
			return fail(err)
		}
		if runsMetric != nil {
			runsMetric.Inc()
			jobsMetric.Add(int64(len(run.Result.PerJob)))
			runDur.Observe(time.Since(t0))
		}
		logger.Info("run finished", "scheduler", labels[i],
			"elapsed_s", time.Since(t0).Seconds(), "jobs", len(run.Result.PerJob))
		results = append(results, run.Result)
	}

	if observing {
		if err := writeObservability(*traceOut, *tsOut, *sumOut, labels, recorders); err != nil {
			return fail(err)
		}
	}

	if *jsonOut {
		// Attach the parameterized label: Result.Scheduler is the bare
		// policy name, which cannot distinguish two parameter variants
		// of one policy. SchedulerSpec round-trips through
		// sched.ParseSpec, fully identifying the cell.
		type labeledResult struct {
			SchedulerSpec string `json:"scheduler_spec"`
			cluster.Result
		}
		labeled := make([]labeledResult, len(results))
		for i, r := range results {
			labeled[i] = labeledResult{SchedulerSpec: labels[i], Result: r}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(labeled); err != nil {
			return fail(err)
		}
		return 0
	}

	availLabel := "fixed pool"
	if len(spec.Availability) > 0 {
		availLabel = spec.Availability[0].Label() + " availability"
	}
	modelLabel := "mix"
	if len(spec.AppModels) > 0 {
		modelLabel = spec.AppModels[0].Label()
	}
	fmt.Fprintf(stdout, "scenario %q: cluster of %d nodes, %s arrivals, %s, app model %s\n\n",
		spec.Name, n, spec.Arrivals[0].Label(), availLabel, modelLabel)
	width := len("scheduler")
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	fmt.Fprintf(stdout, "%-*s  %10s  %12s  %10s  %11s  %9s  %8s  %10s\n",
		width, "scheduler", "makespan", "mean resp.", "mean wait", "utilization", "mean eff.", "realloc", "lost work")
	for i, r := range results {
		fmt.Fprintf(stdout, "%-*s  %9.1fs  %11.1fs  %9.1fs  %10.1f%%  %8.1f%%  %8d  %9.1fs\n",
			width, labels[i], r.Makespan, r.MeanResponse, r.MeanWait,
			100*r.Utilization, 100*r.MeanAllocEfficiency, r.Reallocations, r.LostWorkS)
	}
	fmt.Fprintln(stdout, "\nDynamic node allocation (equipartition, efficiency-greedy) raises the")
	fmt.Fprintln(stdout, "cluster's service rate over rigid FCFS — the paper's §1/§9 motivation.")
	return 0
}

// fedEnv carries the already-resolved CLI environment into the
// federated comparison path.
type fedEnv struct {
	stdout    io.Writer
	logger    *slog.Logger
	fail      func(error) int
	jsonOut   bool
	observing bool
	dt        float64
	traceOut  string
	tsOut     string
	sumOut    string

	reg        *telemetry.Registry
	runsMetric *telemetry.Counter
	jobsMetric *telemetry.Counter
	runDur     *telemetry.Histogram
}

// runFederated compares the federated scenario's admission × routing
// policy pairs over its fixed multi-cluster fleet. Each pair is one
// orchestrated run of the shared arrival stream; the report carries the
// merged fleet result plus the pair's rejected count and per-cluster
// routed counts.
func runFederated(spec *scenario.Spec, env fedEnv) int {
	f := spec.Federation
	n := spec.Nodes[0]
	load := spec.Loads[0]
	clusters := make([]string, len(f.Clusters))
	for i := range f.Clusters {
		clusters[i] = f.Clusters[i].Name
	}
	var fedRouted []*telemetry.Counter
	var fedRejected *telemetry.Counter
	if env.reg != nil {
		for _, cn := range clusters {
			fedRouted = append(fedRouted, env.reg.Counter("dpsim_federation_routed_jobs_total",
				"Jobs the federation routing policy placed on each member cluster.",
				telemetry.L("cluster", cn)))
		}
		fedRejected = env.reg.Counter("dpsim_federation_rejected_jobs_total",
			"Jobs turned away by the federation admission policy.")
	}
	env.logger.Info("federated comparison starting", "scenario", spec.Name,
		"nodes", n, "clusters", len(clusters),
		"admissions", len(f.Admissions), "routings", len(f.Routings))

	type fedRun struct {
		Admission string `json:"admission"`
		Routing   string `json:"routing"`
		// RejectedJobs and RoutedJobs (federation.clusters order) account
		// for every offered job: rejected + sum(routed) == offered.
		RejectedJobs int   `json:"rejected_jobs"`
		RoutedJobs   []int `json:"routed_jobs"`
		cluster.Result
	}
	var runs []fedRun
	var labels []string
	var recorders []*obs.Recorder
	for ai := range f.Admissions {
		for ri := range f.Routings {
			pair := f.Admissions[ai].Label() + "/" + f.Routings[ri].Label()
			params := scenario.CellParams{
				Nodes: n, Load: load, ArrivalIdx: 0,
				AdmissionIdx: ai, RoutingIdx: ri,
				Seed: spec.Seed,
			}
			if env.observing {
				// One recorder per member cluster: the federated exports get
				// one track per "<pair>:<cluster>" instead of one per run.
				probes := make([]obs.Probe, len(clusters))
				for i, cn := range clusters {
					label := pair + ":" + cn
					cfg := obs.Config{Label: label}
					if spec.Observe != nil {
						cfg = spec.Observe.RecorderConfig(label)
					}
					rec := obs.NewRecorder(cfg)
					labels = append(labels, label)
					recorders = append(recorders, rec)
					probes[i] = rec
				}
				params.MemberProbes = probes
				params.SampleDTS = env.dt
			}
			t0 := time.Now()
			run, err := spec.RunCell(params)
			if err != nil {
				return env.fail(err)
			}
			if env.runsMetric != nil {
				env.runsMetric.Inc()
				env.jobsMetric.Add(int64(len(run.Result.PerJob)))
				env.runDur.Observe(time.Since(t0))
			}
			if fedRejected != nil {
				fedRejected.Add(int64(run.Rejected))
				for i, routed := range run.Routed {
					fedRouted[i].Add(int64(routed))
				}
			}
			env.logger.Info("run finished", "admission", f.Admissions[ai].Label(),
				"routing", f.Routings[ri].Label(), "elapsed_s", time.Since(t0).Seconds(),
				"jobs", len(run.Result.PerJob), "rejected", run.Rejected)
			runs = append(runs, fedRun{
				Admission:    f.Admissions[ai].Label(),
				Routing:      f.Routings[ri].Label(),
				RejectedJobs: run.Rejected,
				RoutedJobs:   run.Routed,
				Result:       run.Result,
			})
		}
	}

	if env.observing {
		if err := writeObservability(env.traceOut, env.tsOut, env.sumOut, labels, recorders); err != nil {
			return env.fail(err)
		}
	}

	if env.jsonOut {
		enc := json.NewEncoder(env.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(runs); err != nil {
			return env.fail(err)
		}
		return 0
	}

	fmt.Fprintf(env.stdout, "scenario %q: federated fleet of %d nodes (%s), %s arrivals\n\n",
		spec.Name, n, strings.Join(clusters, ", "), spec.Arrivals[0].Label())
	awidth, rwidth := len("admission"), len("routing")
	for _, r := range runs {
		if len(r.Admission) > awidth {
			awidth = len(r.Admission)
		}
		if len(r.Routing) > rwidth {
			rwidth = len(r.Routing)
		}
	}
	fmt.Fprintf(env.stdout, "%-*s  %-*s  %10s  %12s  %10s  %11s  %8s  %s\n",
		awidth, "admission", rwidth, "routing",
		"makespan", "mean resp.", "mean wait", "utilization", "rejected", "routed")
	for _, r := range runs {
		routed := make([]string, len(r.RoutedJobs))
		for i, c := range r.RoutedJobs {
			routed[i] = fmt.Sprintf("%s=%d", clusters[i], c)
		}
		fmt.Fprintf(env.stdout, "%-*s  %-*s  %9.1fs  %11.1fs  %9.1fs  %10.1f%%  %8d  %s\n",
			awidth, r.Admission, rwidth, r.Routing, r.Makespan, r.MeanResponse, r.MeanWait,
			100*r.Utilization, r.RejectedJobs, strings.Join(routed, " "))
	}
	fmt.Fprintln(env.stdout, "\nAdmission throttling trades rejected jobs for responsiveness; routing")
	fmt.Fprintln(env.stdout, "decides how the shared stream spreads over the heterogeneous fleet.")
	return 0
}

// writeObservability renders the recorders into the requested export
// files: one trace process, one CSV block and one summary entry per
// compared scheduler, in comparison order. Every file is written
// atomically (temp file + rename), so a failure never leaves a
// truncated export.
func writeObservability(traceOut, tsOut, sumOut string, labels []string, recorders []*obs.Recorder) error {
	if traceOut != "" {
		var tr obs.Trace
		for i, rec := range recorders {
			rec.AppendTrace(&tr, i+1)
		}
		if err := sweep.WriteFileAtomic(traceOut, tr.WriteJSON); err != nil {
			return err
		}
	}
	if tsOut != "" {
		if err := sweep.WriteFileAtomic(tsOut, func(w io.Writer) error {
			tw := obs.NewTimeSeriesWriter(w, "scheduler")
			for i, rec := range recorders {
				if err := tw.WriteAll([]string{labels[i]}, rec.Samples()); err != nil {
					return err
				}
			}
			return tw.Flush()
		}); err != nil {
			return err
		}
	}
	if sumOut != "" {
		summaries := make([]obs.Summary, len(recorders))
		for i, rec := range recorders {
			summaries[i] = rec.Summarize()
		}
		if err := sweep.WriteFileAtomic(sumOut, func(w io.Writer) error {
			return obs.WriteSummaryJSON(w, summaries)
		}); err != nil {
			return err
		}
	}
	return nil
}
