// Command clustersim runs the paper's §9 future-work scenario: a cluster
// serving a stream of malleable applications, comparing a rigid FCFS
// scheduler against dynamic-allocation policies that use per-phase dynamic
// efficiency — the quantity the DPS simulator predicts.
//
// Usage:
//
//	clustersim [-nodes 32] [-jobs 40] [-interarrival 10] [-seed 7] [-json]
//	clustersim -scenario examples/scenarios/openload.json [-json]
//
// Without -scenario, the classic built-in workload runs: an open Poisson
// stream of LU-profile jobs. With -scenario, the named scenario file
// supplies nodes, mix, arrival process and — when declared — the node
// availability process and reconfiguration-cost model (its first grid
// point is used; run cmd/dpssweep to cover the full grid).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dpsim/internal/cluster"
	"dpsim/internal/scenario"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: clustersim [-nodes N] [-jobs N] [-interarrival S] [-seed N] [-scenario FILE] [-json]\n")
	flag.PrintDefaults()
}

func main() {
	nodes := flag.Int("nodes", 32, "cluster nodes")
	jobs := flag.Int("jobs", 40, "jobs in the workload")
	inter := flag.Float64("interarrival", 10, "mean inter-arrival time [s]")
	seed := flag.Uint64("seed", 7, "workload seed")
	scenarioPath := flag.String("scenario", "", "scenario JSON file (overrides the workload flags)")
	jsonOut := flag.Bool("json", false, "print machine-readable JSON results")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "clustersim: unexpected arguments: %v\n", flag.Args())
		usage()
		os.Exit(2)
	}

	var spec *scenario.Spec
	if *scenarioPath != "" {
		var err error
		spec, err = scenario.Load(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
	} else {
		// The classic clustersim workload, expressed as a scenario: an
		// open Poisson stream of LU-profile jobs.
		spec = &scenario.Spec{
			Name:  "clustersim",
			Nodes: []int{*nodes},
			Seed:  *seed,
			Jobs:  *jobs,
			Mix:   []scenario.MixSpec{{Kind: "lu"}},
			Arrivals: scenario.ArrivalList{
				{Process: "poisson", MeanInterarrivalS: *inter},
			},
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
	}

	n := spec.Nodes[0]
	load := spec.Loads[0]
	var results []cluster.Result
	for _, sched := range spec.Schedulers {
		// The first grid point throughout, including the first
		// availability process when the scenario declares any.
		run, err := spec.RunCell(scenario.CellParams{
			Nodes: n, Load: load, Scheduler: sched, ArrivalIdx: 0, AvailIdx: 0, Seed: spec.Seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
		results = append(results, run.Result)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	availLabel := "fixed pool"
	if len(spec.Availability) > 0 {
		availLabel = spec.Availability[0].Label() + " availability"
	}
	fmt.Printf("scenario %q: cluster of %d nodes, %s arrivals, %s\n\n",
		spec.Name, n, spec.Arrivals[0].Label(), availLabel)
	fmt.Printf("%-18s  %10s  %12s  %10s  %11s  %9s  %8s  %10s\n",
		"scheduler", "makespan", "mean resp.", "mean wait", "utilization", "mean eff.", "realloc", "lost work")
	for _, r := range results {
		fmt.Printf("%-18s  %9.1fs  %11.1fs  %9.1fs  %10.1f%%  %8.1f%%  %8d  %9.1fs\n",
			r.Scheduler, r.Makespan, r.MeanResponse, r.MeanWait,
			100*r.Utilization, 100*r.MeanAllocEfficiency, r.Reallocations, r.LostWorkS)
	}
	fmt.Println("\nDynamic node allocation (equipartition, efficiency-greedy) raises the")
	fmt.Println("cluster's service rate over rigid FCFS — the paper's §1/§9 motivation.")
}
