// Command clustersim runs the paper's §9 future-work scenario: a cluster
// serving a stream of malleable applications, comparing a rigid FCFS
// scheduler against dynamic-allocation policies that use per-phase dynamic
// efficiency — the quantity the DPS simulator predicts.
//
// Usage:
//
//	clustersim [-nodes 32] [-jobs 40] [-interarrival 10] [-seed 7] [-json]
//	clustersim -scenario examples/scenarios/openload.json [-json]
//	clustersim -schedulers "rigid-fcfs,easy-backfill,malleable-hysteresis(epoch_s=45)"
//
// Without -scenario, the classic built-in workload runs: an open Poisson
// stream of LU-profile jobs. With -scenario, the named scenario file
// supplies nodes, mix, arrival process and — when declared — the node
// availability process and reconfiguration-cost model (its first grid
// point is used; run cmd/dpssweep to cover the full grid).
//
// -schedulers overrides the compared policies with a comma-separated
// list of scheduler specs — a registered name, optionally with
// parameters as "name(key=value,...)". Valid names come from the policy
// registry (internal/sched) and are listed in the flag's help text.
//
// -appmodels overrides the scenario's application performance-model
// axis (internal/appmodel registry; "mix" = the mix's native models).
// Like the availability axis, only the first grid point runs here — run
// cmd/dpssweep to cover a multi-model grid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dpsim/internal/appmodel"
	"dpsim/internal/cluster"
	"dpsim/internal/scenario"
	"dpsim/internal/sched"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: clustersim [-nodes N] [-jobs N] [-interarrival S] [-seed N] [-scenario FILE] [-schedulers LIST] [-json]\n")
	flag.PrintDefaults()
}

func main() {
	nodes := flag.Int("nodes", 32, "cluster nodes")
	jobs := flag.Int("jobs", 40, "jobs in the workload")
	inter := flag.Float64("interarrival", 10, "mean inter-arrival time [s]")
	seed := flag.Uint64("seed", 7, "workload seed")
	scenarioPath := flag.String("scenario", "", "scenario JSON file (overrides the workload flags)")
	schedulers := flag.String("schedulers", "",
		"comma-separated scheduler specs to compare, each NAME or NAME(k=v,...)\n"+
			"(overrides the scenario's list; valid names: "+strings.Join(sched.Names(), ", ")+")")
	appmodels := flag.String("appmodels", "",
		"comma-separated application performance-model specs, each NAME or NAME(k=v,...)\n"+
			"(overrides the scenario's list; the first entry runs here; valid names:\n"+
			"mix, "+strings.Join(appmodel.Names(), ", ")+")")
	jsonOut := flag.Bool("json", false, "print machine-readable JSON results")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "clustersim: unexpected arguments: %v\n", flag.Args())
		usage()
		os.Exit(2)
	}

	var spec *scenario.Spec
	if *scenarioPath != "" {
		var err error
		spec, err = scenario.Load(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
	} else {
		// The classic clustersim workload, expressed as a scenario: an
		// open Poisson stream of LU-profile jobs.
		spec = &scenario.Spec{
			Name:  "clustersim",
			Nodes: []int{*nodes},
			Seed:  *seed,
			Jobs:  *jobs,
			Mix:   []scenario.MixSpec{{Kind: "lu"}},
			Arrivals: scenario.ArrivalList{
				{Process: "poisson", MeanInterarrivalS: *inter},
			},
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
	}
	if *schedulers != "" {
		if err := spec.ApplySchedulerOverride(*schedulers); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
	}
	if *appmodels != "" {
		if err := spec.ApplyAppModelOverride(*appmodels); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
	}

	n := spec.Nodes[0]
	load := spec.Loads[0]
	var results []cluster.Result
	labels := make([]string, len(spec.Schedulers))
	for i := range spec.Schedulers {
		labels[i] = spec.Schedulers[i].Label()
		// The first grid point throughout, including the first
		// availability process when the scenario declares any.
		run, err := spec.RunCell(scenario.CellParams{
			Nodes: n, Load: load, SchedulerIdx: i, ArrivalIdx: 0, AvailIdx: 0, AppModelIdx: 0,
			Seed: spec.Seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
		results = append(results, run.Result)
	}

	if *jsonOut {
		// Attach the parameterized label: Result.Scheduler is the bare
		// policy name, which cannot distinguish two parameter variants
		// of one policy. SchedulerSpec round-trips through
		// sched.ParseSpec, fully identifying the cell.
		type labeledResult struct {
			SchedulerSpec string `json:"scheduler_spec"`
			cluster.Result
		}
		labeled := make([]labeledResult, len(results))
		for i, r := range results {
			labeled[i] = labeledResult{SchedulerSpec: labels[i], Result: r}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(labeled); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	availLabel := "fixed pool"
	if len(spec.Availability) > 0 {
		availLabel = spec.Availability[0].Label() + " availability"
	}
	modelLabel := "mix"
	if len(spec.AppModels) > 0 {
		modelLabel = spec.AppModels[0].Label()
	}
	fmt.Printf("scenario %q: cluster of %d nodes, %s arrivals, %s, app model %s\n\n",
		spec.Name, n, spec.Arrivals[0].Label(), availLabel, modelLabel)
	width := len("scheduler")
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	fmt.Printf("%-*s  %10s  %12s  %10s  %11s  %9s  %8s  %10s\n",
		width, "scheduler", "makespan", "mean resp.", "mean wait", "utilization", "mean eff.", "realloc", "lost work")
	for i, r := range results {
		fmt.Printf("%-*s  %9.1fs  %11.1fs  %9.1fs  %10.1f%%  %8.1f%%  %8d  %9.1fs\n",
			width, labels[i], r.Makespan, r.MeanResponse, r.MeanWait,
			100*r.Utilization, 100*r.MeanAllocEfficiency, r.Reallocations, r.LostWorkS)
	}
	fmt.Println("\nDynamic node allocation (equipartition, efficiency-greedy) raises the")
	fmt.Println("cluster's service rate over rigid FCFS — the paper's §1/§9 motivation.")
}
