// Command dpstrace runs a small LU factorization on the simulator with
// tracing enabled and renders the timing diagram as an ASCII Gantt chart —
// the textual equivalent of the paper's Figs. 2, 4 and 6 (flow-control
// interleaving becomes directly visible by comparing -window 0 against a
// small window).
//
// Usage:
//
//	dpstrace [-n 648] [-r 162] [-nodes 4] [-p] [-window 0] [-width 100]
//	dpstrace -json > lu.trace.json   # Chrome trace-event JSON instead
//
// With -json the same timing diagram is emitted through the shared
// Chrome trace-event exporter (internal/obs) to stdout: one process per
// node, per-thread compute and transfer tracks — load it in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/lu"
	"dpsim/internal/netmodel"
	"dpsim/internal/obs"
	"dpsim/internal/trace"
)

func main() {
	n := flag.Int("n", 648, "matrix size")
	r := flag.Int("r", 162, "block size")
	nodes := flag.Int("nodes", 4, "nodes")
	pipelined := flag.Bool("p", false, "pipelined flow graph")
	window := flag.Int("window", 0, "flow-control window")
	width := flag.Int("width", 100, "gantt width in characters")
	jsonOut := flag.Bool("json", false, "emit Chrome trace-event JSON (Perfetto) to stdout instead of the Gantt chart")
	flag.Parse()

	app, err := lu.Build(lu.Config{
		N: *n, R: *r, Nodes: *nodes, Pipelined: *pipelined, Window: *window,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpstrace: %v\n", err)
		os.Exit(1)
	}
	rec := trace.NewRecorder()
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        core.NewSimPlatform(*nodes, netmodel.FastEthernet(), cpumodel.Defaults()),
		NoAlloc:         true,
		PerStepOverhead: 25 * eventq.Microsecond,
		Trace:           rec.Hook,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpstrace: %v\n", err)
		os.Exit(1)
	}
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpstrace: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		var tr obs.Trace
		rec.AppendChromeTrace(&tr)
		if err := tr.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dpstrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("predicted running time: %v  (steps %d, transfers %d)\n\n",
		res.Elapsed, res.Steps, res.Transfers)
	fmt.Println(rec.Gantt(*width))
	fmt.Println(rec.Summary())
}
