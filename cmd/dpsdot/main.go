// Command dpsdot prints a DPS flow graph in Graphviz dot syntax (or a
// plain-text summary) — the textual counterpart of the paper's flow-graph
// figures. Render with `dpsdot | dot -Tsvg > graph.svg`.
//
// Usage:
//
//	dpsdot [-app lu|stencil] [-n 648] [-r 162] [-nodes 4] [-p] [-pm]
//	       [-window 0] [-summary]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpsim/internal/lu"
	"dpsim/internal/stencil"
)

func main() {
	app := flag.String("app", "lu", "application: lu or stencil")
	n := flag.Int("n", 648, "problem size")
	r := flag.Int("r", 162, "LU block size")
	nodes := flag.Int("nodes", 4, "nodes")
	pipelined := flag.Bool("p", false, "pipelined LU graph")
	pm := flag.Bool("pm", false, "parallel sub-block multiplication")
	window := flag.Int("window", 0, "flow-control window")
	bands := flag.Int("bands", 4, "stencil bands")
	iters := flag.Int("iters", 2, "stencil iterations")
	summary := flag.Bool("summary", false, "plain-text summary instead of dot")
	flag.Parse()

	var out interface {
		Dot() string
		Summary() string
	}
	switch *app {
	case "lu":
		a, err := lu.Build(lu.Config{
			N: *n, R: *r, Nodes: *nodes,
			Pipelined: *pipelined, ParallelMult: *pm, Window: *window,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpsdot: %v\n", err)
			os.Exit(1)
		}
		out = a.Graph
	case "stencil":
		a, err := stencil.Build(stencil.Config{
			N: *n, Bands: *bands, Nodes: *nodes, Iterations: *iters,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpsdot: %v\n", err)
			os.Exit(1)
		}
		out = a.Graph
	default:
		fmt.Fprintf(os.Stderr, "dpsdot: unknown app %q\n", *app)
		os.Exit(2)
	}
	if *summary {
		fmt.Print(out.Summary())
		return
	}
	fmt.Print(out.Dot())
}
