// Command paperrepro regenerates the tables and figures of Schaeli,
// Gerlach, Hersch, "A simulator for parallel applications with dynamically
// varying compute node allocation" (IPPS 2006).
//
// Usage:
//
//	paperrepro [-exp all|table1|fig8|fig9|fig10|fig11|fig12|fig13|ablations]
//	           [-quick] [-seeds n]
//
// Full scale (default) uses the paper's 2592×2592 matrix; -quick halves
// the scale (same block counts and graph shapes) and is what the test
// suite exercises.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dpsim/internal/experiments"
	"dpsim/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig8, fig9, fig10, fig11, fig12, fig13, ablations")
	quick := flag.Bool("quick", false, "half-scale problems (fast)")
	seeds := flag.Int("seeds", 3, "measured repetitions per configuration")
	flag.Parse()

	s := experiments.Setup{Quick: *quick, Seeds: *seeds}
	if err := run(*exp, s); err != nil {
		fmt.Fprintf(os.Stderr, "paperrepro: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, s experiments.Setup) error {
	var samples []metrics.ErrorSample
	show := func(t *experiments.Table, smp []metrics.ErrorSample, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
		samples = append(samples, smp...)
		return nil
	}
	started := time.Now()
	switch exp {
	case "table1":
		t, err := experiments.Table1(s)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	case "fig8":
		if err := show(expand3(experiments.Fig8(s))); err != nil {
			return err
		}
	case "fig9":
		if err := show(expand3(experiments.Fig9(s))); err != nil {
			return err
		}
	case "fig10":
		if err := show(expand3(experiments.Fig10(s))); err != nil {
			return err
		}
	case "fig11":
		if err := show(expand3(experiments.Fig11(s))); err != nil {
			return err
		}
	case "fig12":
		if err := show(expand3(experiments.Fig12(s))); err != nil {
			return err
		}
	case "fig13":
		// Fig. 13 aggregates the error samples of the other experiments;
		// run the cheaper subset when invoked alone.
		for _, f := range []func(experiments.Setup) (*experiments.Table, []metrics.ErrorSample, error){
			experiments.Fig9, experiments.Fig11, experiments.Fig12,
		} {
			if err := show(expand3(f(s))); err != nil {
				return err
			}
		}
		printFig13(samples)
	case "windows":
		t, err := experiments.WindowSweep(s)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	case "ablations":
		t, err := experiments.Ablations(s)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	case "all":
		t1, err := experiments.Table1(s)
		if err != nil {
			return err
		}
		fmt.Println(t1.Render())
		for _, f := range []func(experiments.Setup) (*experiments.Table, []metrics.ErrorSample, error){
			experiments.Fig8, experiments.Fig9, experiments.Fig10,
			experiments.Fig11, experiments.Fig12,
		} {
			if err := show(expand3(f(s))); err != nil {
				return err
			}
		}
		printFig13(samples)
		ab, err := experiments.Ablations(s)
		if err != nil {
			return err
		}
		fmt.Println(ab.Render())
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	fmt.Printf("(completed in %v)\n", time.Since(started).Round(time.Millisecond))
	return nil
}

func expand3(t *experiments.Table, s []metrics.ErrorSample, err error) (*experiments.Table, []metrics.ErrorSample, error) {
	return t, s, err
}

func printFig13(samples []metrics.ErrorSample) {
	t, hist := experiments.Fig13(samples)
	fmt.Println(t.Render())
	fmt.Println("Prediction error histogram (2% bins):")
	fmt.Println(hist)
}
