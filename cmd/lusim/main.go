// Command lusim measures and predicts one LU factorization configuration:
// the workhorse for exploring parallelization strategies with the
// simulator (paper §6–8).
//
// Usage:
//
//	lusim [-n 2592] [-r 324] [-nodes 4] [-threads 0] [-multthreads 0]
//	      [-multnodes 0] [-p] [-window 0] [-pm] [-kill "1:4,3:2"]
//	      [-seeds 3] [-iters]
//
// -kill takes comma-separated afterIteration:threads pairs, e.g. "1:4"
// reproduces the paper's "kill 4 after iteration 1".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dpsim/internal/experiments"
	"dpsim/internal/lu"
	"dpsim/internal/metrics"
)

func main() {
	n := flag.Int("n", 2592, "matrix size")
	r := flag.Int("r", 324, "block size (must divide n)")
	nodes := flag.Int("nodes", 4, "storage nodes")
	threads := flag.Int("threads", 0, "worker threads (default n/r)")
	multThreads := flag.Int("multthreads", 0, "multiplication threads (default threads)")
	multNodes := flag.Int("multnodes", 0, "multiplication nodes (default nodes)")
	pipelined := flag.Bool("p", false, "pipelined flow graph (P)")
	window := flag.Int("window", 0, "flow-control window (FC, 0=off)")
	pm := flag.Bool("pm", false, "parallel sub-block multiplication (PM)")
	kill := flag.String("kill", "", "removals, e.g. 1:4,3:2 (after iter 1 shrink to 4 mult threads, ...)")
	seeds := flag.Int("seeds", 3, "measured repetitions")
	iters := flag.Bool("iters", false, "print per-iteration dynamic efficiency")
	flag.Parse()

	cfg := lu.Config{
		N: *n, R: *r, Nodes: *nodes, Threads: *threads,
		MultThreads: *multThreads, MultNodes: *multNodes,
		Pipelined: *pipelined, Window: *window, ParallelMult: *pm,
	}
	if *kill != "" {
		for _, part := range strings.Split(*kill, ",") {
			var after, to int
			if _, err := fmt.Sscanf(part, "%d:%d", &after, &to); err != nil {
				fmt.Fprintf(os.Stderr, "lusim: bad -kill entry %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.Removals = append(cfg.Removals, lu.Removal{AfterIter: after, MultThreads: to})
		}
	}

	run, err := experiments.MeasureAndPredict("lusim", cfg, experiments.Setup{Seeds: *seeds})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lusim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("configuration: n=%d r=%d nodes=%d threads=%d multThreads=%d multNodes=%d P=%v FC=%d PM=%v removals=%v\n",
		run.Cfg.N, run.Cfg.R, run.Cfg.Nodes, run.Cfg.Threads, run.Cfg.MultThreads,
		run.Cfg.MultNodes, run.Cfg.Pipelined, run.Cfg.Window, run.Cfg.ParallelMult, run.Cfg.Removals)
	fmt.Printf("serial (model):    %8.1f s\n", lu.TotalSerialWork(run.Cfg.Costs, run.Cfg.N, run.Cfg.R).Seconds())
	fmt.Printf("measured (testbed): ")
	for _, m := range run.Measured {
		fmt.Printf("%7.1f s", m)
	}
	fmt.Printf("   mean %.1f s\n", run.MeasuredMean())
	fmt.Printf("predicted (sim):   %8.1f s   (error %+.1f%%)\n",
		run.Predicted, 100*(run.Predicted-run.MeasuredMean())/run.MeasuredMean())
	fmt.Printf("mean dynamic efficiency: measured %.1f%%, predicted %.1f%%\n",
		100*metrics.MeanEfficiency(run.MeasuredIters), 100*metrics.MeanEfficiency(run.PredictedIters))

	if *iters {
		fmt.Println("\niteration  serial[s]  elapsed(meas)  eff(meas)  elapsed(sim)  eff(sim)  nodes")
		for i, it := range run.MeasuredIters {
			var sim metrics.IterationStat
			if i < len(run.PredictedIters) {
				sim = run.PredictedIters[i]
			}
			fmt.Printf("%9d  %9.1f  %13.1f  %8.1f%%  %12.1f  %7.1f%%  %5d\n",
				it.Index+1, it.SerialWork.Seconds(), it.Elapsed.Seconds(),
				100*it.Efficiency, sim.Elapsed.Seconds(), 100*sim.Efficiency, it.Nodes)
		}
	}
}
