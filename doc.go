// Package dpsim is a Go reproduction of "A simulator for parallel
// applications with dynamically varying compute node allocation"
// (B. Schaeli, S. Gerlach, R. D. Hersch, EPFL — IPPS 2006).
//
// The repository contains the full system the paper describes:
//
//   - internal/dps — the Dynamic Parallel Schedules (DPS) framework model:
//     flow graphs of split/merge/stream/leaf operations, typed data
//     objects, runtime routing functions, thread collections with dynamic
//     width and placement, flow control.
//   - internal/core — the simulation engine: direct execution of the DPS
//     runtime and application code with atomic-step accounting, partial
//     direct execution (PDEXEC), the NOALLOC mode, and the paper's network
//     (t = l + s/b with equal-share contention) and CPU (processor sharing
//     plus communication overhead) models.
//   - internal/testbed — a high-fidelity virtual cluster standing in for
//     the paper's 8×UltraSparc II / Fast Ethernet testbed (packetized
//     network, jitter, per-node speed variation): the "Measurement" series.
//   - internal/parallel, internal/transport — the real concurrent DPS
//     runtime over goroutines and TCP sockets.
//   - internal/lu — the paper's test application: parallel block LU
//     factorization in the basic, pipelined (P), flow-controlled (FC) and
//     parallel-sub-block-multiplication (PM) variants, with dynamic
//     multiplication-thread removal.
//   - internal/experiments — regenerates Table 1 and Figs. 8–13.
//   - internal/cluster — the §9 future work: a malleable cluster server,
//     drivable run-to-completion or through step primitives
//     (PeekNextEventTime/ProcessNextEvent/Inject) for open arrivals, with
//     a time-varying node pool (capacity changes preempt and reallocate
//     jobs) and a reconfiguration-cost model (data-redistribution pauses
//     on allocation deltas, lost work on abrupt reclaims).
//   - internal/sched — the scheduling-policy subsystem: the Scheduler
//     interface and scheduler-visible state views, a self-registering
//     policy registry (Register/ByName/Names, with per-policy parameters
//     and "name(key=value,...)" spec strings), eight built-in policies
//     spanning the rigidity spectrum (rigid-fcfs, easy-backfill,
//     moldable, sjf-moldable, equipartition, fair-share,
//     efficiency-greedy, malleable-hysteresis), and the CheckInvariants
//     harness certifying any registered policy against the simulator's
//     invariants under randomized workloads and availability timelines.
//     The allocation contract is buffer-reuse based: Allocate writes
//     into a caller-provided slice indexed like the value-typed
//     State.Active snapshot, and policies keep per-instance scratch
//     buffers, which makes the simulator's scheduler-invocation hot
//     path allocation-free in steady state (asserted by
//     testing.AllocsPerRun regression tests in both packages).
//   - internal/appmodel — the application performance-model subsystem:
//     the AppModel interface (phase time/rate/efficiency as a function
//     of work and allocation), a self-registering registry mirroring
//     internal/sched (Register/ByName/Names, Params,
//     "name(key=value,...)" spec strings), five analytical families
//     (amdahl, downey, comm-bound, roofline, fixed) plus the classic
//     mix shapes (lu, synthetic, stencil) as comm-factor instances, and
//     per-model migration/checkpoint cost hooks (migrate_s, ckpt_s)
//     charged through the cluster's reconfiguration-cost path.
//   - internal/availability — node-availability dynamics: deterministic
//     generators for maintenance windows, exponential/Weibull
//     failure/repair processes, spot-style preemption with reclaim
//     notice, desktop-grid churn, and capacity-trace replay, all seeded
//     through forked internal/rng streams.
//   - internal/scenario — declarative cluster scenarios: JSON specs with
//     weighted job mixes (LU-profile, synthetic, stencil-derived,
//     per-component fair-share job weights), pluggable arrival processes
//     (closed, Poisson, bursty MMPP, diurnal, trace replay),
//     availability processes, parameterized scheduler blocks and an
//     application performance-model axis (appmodels), generated through
//     forked deterministic RNG streams.
//   - internal/sweep — expands a scenario into an experiment grid (arrival
//     × availability × nodes × load × scheduler × appmodel), runs it on a
//     parallel worker pool with seed replications, and
//     aggregates/exports results as CSV/JSON.
//   - internal/obs — the observability layer: a Probe interface hooked
//     into every cluster.Sim state transition (zero-cost when disabled —
//     one nil-check branch per hook site, preserving the 0 allocs/op
//     steady state), a ring-buffered Recorder with fixed-interval
//     time-series sampling on the virtual clock, and exporters for
//     Chrome trace-event JSON (Perfetto), time-series CSV and
//     run-summary JSON, wired into clustersim, dpssweep and dpstrace.
//   - internal/docs — documentation-drift checks: markdown link check,
//     scenario-schema and export-column cross-checks against docs/.
//
// Entry points: cmd/paperrepro (all tables and figures), cmd/lusim (one
// configuration), cmd/dpstrace (timing diagrams), cmd/clustersim (the
// multi-application scheduler comparison), cmd/dpssweep (scenario-driven
// parallel experiment sweeps), and the runnable programs in examples/.
package dpsim
