// Stencil example: a Jacobi heat-diffusion solver with neighborhood halo
// exchange (paper §2's relative-index communication pattern), verified
// against a serial reference and then scaled across node counts with the
// simulator — a second application domain on the same DPS framework.
package main

import (
	"fmt"
	"log"
	"math"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
	"dpsim/internal/stencil"
)

func main() {
	// Correctness: real computations inside the simulation.
	cfg := stencil.Config{N: 64, Bands: 8, Nodes: 4, Iterations: 20}
	app, err := stencil.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        core.NewSimPlatform(cfg.Nodes, netmodel.FastEthernet(), cpumodel.Defaults()),
		RunComputations: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	init := app.Prepare(eng, 7)
	app.Start(eng)
	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	got := app.AssembleFrom(eng.Store)
	want := stencil.SerialReference(init, cfg.Iterations)
	var worst float64
	for i := range want {
		for j := range want[i] {
			worst = math.Max(worst, math.Abs(got[i][j]-want[i][j]))
		}
	}
	fmt.Printf("Jacobi %dx%d, %d bands, %d iterations: max |parallel-serial| = %.1e\n",
		cfg.N, cfg.N, cfg.Bands, cfg.Iterations, worst)
	fmt.Print("residuals: ")
	for _, r := range app.Residuals()[:5] {
		fmt.Printf("%.3f ", r)
	}
	fmt.Println("...")

	// Scaling study: predicted time vs node count (PDEXEC NOALLOC).
	fmt.Println("\npredicted time of a 4096x4096 grid, 100 sweeps (16 bands):")
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		app, err := stencil.Build(stencil.Config{N: 4096, Bands: 16, Nodes: nodes, Iterations: 100})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(nodes, netmodel.FastEthernet(), cpumodel.Defaults()),
			NoAlloc:         true,
			PerStepOverhead: 25 * eventq.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		app.Start(eng)
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		serial := float64(app.SerialWork()) * 100
		eff := serial / (float64(nodes) * float64(res.Elapsed))
		fmt.Printf("  %2d nodes: %7.1f s   efficiency %5.1f%%\n",
			nodes, res.Elapsed.Seconds(), 100*eff)
	}
}
