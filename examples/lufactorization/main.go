// LU factorization example: run the paper's test application (§5) on the
// simulator with real computations, verify the distributed result against
// the serial reference, and compare the basic and pipelined flow graphs.
package main

import (
	"fmt"
	"log"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/linalg"
	"dpsim/internal/lu"
	"dpsim/internal/netmodel"
)

func main() {
	// Small enough to execute the real kernels during the simulation
	// (direct execution of the computations, paper §4).
	cfg := lu.Config{N: 96, R: 16, Nodes: 4}

	fmt.Println("== correctness: simulated parallel LU vs serial reference ==")
	app, err := lu.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        core.NewSimPlatform(cfg.Nodes, netmodel.FastEthernet(), cpumodel.Defaults()),
		RunComputations: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	orig := app.Prepare(eng, 2026)
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	got := app.Assemble(eng)
	ref := orig.Clone()
	if _, err := linalg.BlockedLU(ref, cfg.R); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |distributed - reference| = %.2e  (virtual time %v)\n\n",
		got.MaxAbsDiff(ref), res.Elapsed)

	fmt.Println("== performance: basic vs pipelined flow graph (PDEXEC, 2592x2592) ==")
	for _, variant := range []struct {
		label string
		cfg   lu.Config
	}{
		{"basic,     r=324", lu.Config{N: 2592, R: 324, Nodes: 4}},
		{"pipelined, r=324", lu.Config{N: 2592, R: 324, Nodes: 4, Pipelined: true}},
		{"pipelined+FC     ", lu.Config{N: 2592, R: 324, Nodes: 4, Pipelined: true, Window: 16}},
	} {
		app, err := lu.Build(variant.cfg)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := core.New(core.Config{
			Graph:           app.Graph,
			Platform:        core.NewSimPlatform(4, netmodel.FastEthernet(), cpumodel.Defaults()),
			NoAlloc:         true, // PDEXEC NOALLOC: no payloads, sizes counted
			PerStepOverhead: 25 * eventq.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		app.Start(eng)
		r, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  predicted %7.1f s\n", variant.label, r.Elapsed.Seconds())
	}
	fmt.Printf("serial reference (cost model): %.1f s\n",
		lu.TotalSerialWork(lu.DefaultCostModel(), 2592, 324).Seconds())
}
