// Parallel TCP example: run the LU factorization on the REAL DPS runtime —
// goroutine execution threads, data objects serialized over loopback TCP
// sockets, real kernels — and verify the distributed factors. This is the
// non-simulated half of the paper's premise: the same application code
// runs identically on the real runtime and inside the simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"dpsim/internal/linalg"
	"dpsim/internal/lu"
	"dpsim/internal/parallel"
	"dpsim/internal/transport"
)

func main() {
	cfg := lu.Config{N: 240, R: 40, Nodes: 4, Pipelined: true}
	app, err := lu.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	codec := transport.NewCodec()
	lu.RegisterCodec(codec)

	rt, err := parallel.New(parallel.Config{
		Graph:  app.Graph,
		Nodes:  cfg.Nodes,
		Codec:  codec,
		UseTCP: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	orig := app.PrepareOn(rt.Store, 99)
	start := time.Now()
	rt.Inject(app.Init, 0, &lu.Seed{})
	if err := rt.Wait(); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	got := app.AssembleFrom(rt.Store)
	ref := orig.Clone()
	if _, err := linalg.BlockedLU(ref, cfg.R); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized %dx%d (r=%d) across %d TCP-connected nodes in %v\n",
		cfg.N, cfg.N, cfg.R, cfg.Nodes, wall.Round(time.Millisecond))
	fmt.Printf("max |distributed - serial reference| = %.2e\n", got.MaxAbsDiff(ref))
	fmt.Println("\niteration start times (wall clock):")
	for _, ph := range rt.Phases() {
		fmt.Printf("  %-8s at %8v\n", ph.Name, ph.Elapsed.Round(time.Microsecond))
	}
}
