// Malleable allocation example: the paper's headline scenario (§8,
// Figs. 11–12). An LU factorization starts on 8 nodes; after the first
// iteration, four multiplication nodes are handed back to the cluster.
// The run barely slows down while the dynamic efficiency jumps — the
// evidence that dynamic node allocation raises cluster utilization.
package main

import (
	"fmt"
	"log"

	"dpsim/internal/experiments"
	"dpsim/internal/lu"
	"dpsim/internal/metrics"
)

func main() {
	base := lu.Config{
		N: 2592, R: 324,
		Nodes:   4, // storage nodes (hold the column blocks)
		Threads: 8, // one worker thread per column block
	}
	strategies := []struct {
		label string
		mt    int
		mn    int
		rm    []lu.Removal
	}{
		{"static 4 nodes", 4, 4, nil},
		{"static 8 nodes", 8, 8, nil},
		{"8 nodes, release 4 after iteration 1", 8, 8, []lu.Removal{{AfterIter: 1, MultThreads: 4}}},
	}

	fmt.Println("strategy                                time[s]   mean dynamic efficiency")
	for _, s := range strategies {
		cfg := base
		cfg.MultThreads = s.mt
		cfg.MultNodes = s.mn
		cfg.Removals = s.rm
		run, err := experiments.MeasureAndPredict(s.label, cfg, experiments.Setup{Seeds: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %6.1f   %6.1f%%\n",
			s.label, run.MeasuredMean(), 100*metrics.MeanEfficiency(run.MeasuredIters))
	}
	fmt.Println("\nper-iteration efficiency of the release strategy:")
	cfg := base
	cfg.MultThreads = 8
	cfg.MultNodes = 8
	cfg.Removals = []lu.Removal{{AfterIter: 1, MultThreads: 4}}
	run, err := experiments.MeasureAndPredict("release", cfg, experiments.Setup{Seeds: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range run.MeasuredIters {
		fmt.Printf("  iteration %d: %5.1fs elapsed on %d nodes, efficiency %5.1f%%\n",
			it.Index+1, it.Elapsed.Seconds(), it.Nodes, 100*it.Efficiency)
	}
}
