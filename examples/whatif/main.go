// What-if example: the parametric-model use case of paper §4 — "one may
// modify the bandwidth and latency parameters to evaluate the benefits of
// a faster network, or reduce the duration of various operations to
// identify the ones that should be optimized".
package main

import (
	"fmt"
	"log"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/eventq"
	"dpsim/internal/lu"
	"dpsim/internal/netmodel"
)

func predict(cfg lu.Config, np netmodel.Params, speedup map[string]float64) float64 {
	app, err := lu.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	durations := core.AnalyticSource()
	if speedup != nil {
		durations = core.SourceFunc(func(key string, analytic eventq.Duration, _ int) eventq.Duration {
			if f, ok := speedup[key]; ok {
				return eventq.Duration(float64(analytic) / f)
			}
			return analytic
		})
	}
	eng, err := core.New(core.Config{
		Graph:           app.Graph,
		Platform:        core.NewSimPlatform(cfg.Nodes, np, cpumodel.Defaults()),
		Durations:       durations,
		NoAlloc:         true,
		PerStepOverhead: 25 * eventq.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	app.Start(eng)
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.Elapsed.Seconds()
}

func main() {
	cfg := lu.Config{N: 2592, R: 162, Nodes: 8, Pipelined: true}
	base := netmodel.FastEthernet()
	baseline := predict(cfg, base, nil)
	fmt.Printf("baseline (Fast Ethernet, 8 nodes, pipelined r=162): %.1f s\n\n", baseline)

	fmt.Println("-- network what-ifs --")
	for _, w := range []struct {
		label string
		np    netmodel.Params
	}{
		{"2x bandwidth ", netmodel.Params{Latency: base.Latency, Bandwidth: 2 * base.Bandwidth, Contention: true}},
		{"10x bandwidth", netmodel.Params{Latency: base.Latency, Bandwidth: 10 * base.Bandwidth, Contention: true}},
		{"zero latency ", netmodel.Params{Latency: 0, Bandwidth: base.Bandwidth, Contention: true}},
	} {
		s := predict(cfg, w.np, nil)
		fmt.Printf("%s → %6.1f s  (%+5.1f%%)\n", w.label, s, 100*(s/baseline-1))
	}

	fmt.Println("\n-- kernel what-ifs (which operation is worth optimizing?) --")
	for _, w := range []struct {
		label string
		speed map[string]float64
	}{
		{"2x faster gemm", map[string]float64{"gemm:162": 2}},
		{"2x faster trsm", map[string]float64{"trsm:162": 2}},
		{"2x faster LU panel", map[string]float64{
			"lu:2592x162": 2, "lu:2430x162": 2, "lu:2268x162": 2, "lu:2106x162": 2,
			"lu:1944x162": 2, "lu:1782x162": 2, "lu:1620x162": 2, "lu:1458x162": 2,
			"lu:1296x162": 2, "lu:1134x162": 2, "lu:972x162": 2, "lu:810x162": 2,
			"lu:648x162": 2, "lu:486x162": 2, "lu:324x162": 2, "lu:162x162": 2,
		}},
	} {
		s := predict(cfg, base, w.speed)
		fmt.Printf("%-18s → %6.1f s  (%+5.1f%%)\n", w.label, s, 100*(s/baseline-1))
	}
	fmt.Println("\nThe tile multiplications dominate: optimizing gemm pays; trsm barely matters.")
}
