// Quickstart: build a minimal DPS flow graph (split → leaf → merge),
// simulate it on a 4-node virtual cluster, and print the predicted
// running time plus the timing diagram — the paper's Fig. 1/2 scenario.
package main

import (
	"fmt"
	"log"

	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/dps"
	"dpsim/internal/eventq"
	"dpsim/internal/netmodel"
	"dpsim/internal/serial"
	"dpsim/internal/trace"
)

// workItem is a strongly typed DPS data object: a chunk id plus a payload
// whose size the simulated network sees.
type workItem struct {
	id      int
	payload int // bytes
}

func (w *workItem) MarshalDPS(enc serial.Writer) {
	enc.I64(int64(w.id))
	enc.Skip(w.payload)
}

// sumState aggregates the results of one split–merge instance.
type sumState struct{ sum int }

func (s *sumState) Absorb(ctx dps.Ctx, in dps.DataObject) { s.sum += in.(*workItem).id }
func (s *sumState) Finish(ctx dps.Ctx) {
	fmt.Printf("merge finished: sum of processed ids = %d (virtual time %v)\n", s.sum, ctx.Now())
}

func main() {
	const nodes = 4

	master := dps.NewCollection("master", 1, nodes)
	workers := dps.NewCollection("workers", nodes, nodes)

	g := dps.NewGraph("quickstart")
	split := g.Split("split", master, func(ctx dps.Ctx, in dps.DataObject) {
		// Divide the request into 8 sub-tasks of 1 MB each.
		for i := 1; i <= 8; i++ {
			ctx.Compute("prepare", 200*eventq.Microsecond, nil)
			ctx.Post(&workItem{id: i, payload: 1 << 20})
		}
	})
	compute := g.Leaf("compute", workers, func(ctx dps.Ctx, in dps.DataObject) {
		ctx.Compute("crunch", 50*eventq.Millisecond, nil) // the actual work
		ctx.Post(&workItem{id: in.(*workItem).id, payload: 1024})
	})
	merge := g.Merge("merge", master, func(dps.DataObject) dps.MergeState { return &sumState{} })

	g.Connect(split, compute, dps.RoundRobin)
	g.Connect(compute, merge, nil)
	g.PairOps(split, merge, nil)

	rec := trace.NewRecorder()
	eng, err := core.New(core.Config{
		Graph:    g,
		Platform: core.NewSimPlatform(nodes, netmodel.FastEthernet(), cpumodel.Defaults()),
		Trace:    rec.Hook,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.Inject(split, 0, &workItem{})
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("predicted running time on %d nodes: %v\n", nodes, res.Elapsed)
	fmt.Printf("atomic steps: %d, network transfers: %d, data objects: %d\n\n",
		res.Steps, res.Transfers, res.Posts)
	fmt.Println(rec.Gantt(90))
}
