package dpsim

// One benchmark per evaluation artifact of the paper: each regenerates the
// corresponding table or figure at reduced (Quick) scale with one measured
// repetition, so `go test -bench=.` demonstrates every experiment end to
// end. cmd/paperrepro runs the same experiments at full paper scale.

import (
	"testing"

	"dpsim/internal/cluster"
	"dpsim/internal/core"
	"dpsim/internal/cpumodel"
	"dpsim/internal/experiments"
	"dpsim/internal/lu"
	"dpsim/internal/metrics"
	"dpsim/internal/netmodel"
)

func quickSetup() experiments.Setup {
	return experiments.Setup{Quick: true, Seeds: 1}
}

// BenchmarkTable1 regenerates Table 1: wall time, allocation volume and
// predicted time of direct execution, PDEXEC and PDEXEC NOALLOC.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (modifications vs granularity, 4 nodes).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig8(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9 (modifications at fine granularity).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig9(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10 (granularity × strategy, 8 nodes).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig10(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 regenerates Fig. 11 (dynamic efficiency per iteration).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig11(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12 (thread-removal strategies).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig12(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 regenerates Fig. 13 (prediction-error histogram) from the
// Fig. 12 sample set.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, samples, err := experiments.Fig12(quickSetup())
		if err != nil {
			b.Fatal(err)
		}
		tab, hist := experiments.Fig13(samples)
		if len(tab.Rows) == 0 || hist == "" {
			b.Fatal("empty fig13 output")
		}
	}
}

// BenchmarkAblations exercises the §4 model knobs (contention, comm CPU
// overhead, processor sharing, faster-network what-ifs).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(quickSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterServer runs the §9 future-work scenario: schedulers on a
// malleable cluster serving LU-profile jobs.
func BenchmarkClusterServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wl := cluster.PoissonWorkload(24, 16, 12, uint64(i)+1)
		results, err := cluster.Compare(16, wl)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 4 {
			b.Fatal("missing scheduler results")
		}
	}
}

// BenchmarkPredictionOnly measures the cost of a single PDEXEC NOALLOC
// prediction (the simulator's fast path, Table 1's bottom row).
func BenchmarkPredictionOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := lu.Build(lu.Config{N: 1296, R: 162, Nodes: 4, Pipelined: true})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.New(core.Config{
			Graph:    app.Graph,
			Platform: core.NewSimPlatform(4, netmodel.FastEthernet(), cpumodel.Defaults()),
			NoAlloc:  true,
		})
		if err != nil {
			b.Fatal(err)
		}
		app.Start(eng)
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureAndPredict measures one full measured+predicted pair
// (the unit of every figure).
func BenchmarkMeasureAndPredict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := lu.Config{N: 1296, R: 162, Nodes: 4}
		run, err := experiments.MeasureAndPredict("bench", cfg, quickSetup())
		if err != nil {
			b.Fatal(err)
		}
		if metrics.Mean(run.Measured) <= 0 {
			b.Fatal("no measurement")
		}
	}
}
